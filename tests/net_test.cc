// Tests for the networked serving layer (src/net/): wire framing,
// the fair bounded scheduler, and the TCP server end to end.
//
// The loopback integration tests drive real sockets against an in-process
// NetServer and hold every response byte-identical to a single-threaded
// replay of the same commands through the shared protocol core (which is
// exactly what the stdin REPL executes). They run under TSan in CI
// together with the engine/store/dynamic concurrency tests.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <future>
#include <limits>
#include <map>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "net/frame.h"
#include "net/protocol.h"
#include "net/scheduler.h"
#include "net/server.h"
#include "net/stats.h"
#include "obs/trace.h"
#include "parhc.h"

namespace parhc {
namespace {

using net::FrameSplitter;
using net::WireMessage;

// ---------------------------------------------------------------------------
// Framing

std::vector<WireMessage> DrainAll(FrameSplitter& s) {
  std::vector<WireMessage> out;
  WireMessage m;
  while (s.Next(&m)) out.push_back(m);
  return out;
}

TEST(FrameSplitter, SplitsLinesAcrossArbitraryChunks) {
  const std::string stream = "hello world\r\nsecond line\nthird";
  // Feed byte by byte: the worst split-write case.
  FrameSplitter s(/*allow_binary=*/true);
  std::vector<WireMessage> msgs;
  for (char c : stream) {
    s.Feed(&c, 1);
    for (auto& m : DrainAll(s)) msgs.push_back(m);
  }
  ASSERT_EQ(msgs.size(), 2u);
  EXPECT_EQ(msgs[0].text, "hello world");  // '\r' stripped
  EXPECT_EQ(msgs[1].text, "second line");
  s.FlushEof();  // final line without '\n' still arrives
  auto rest = DrainAll(s);
  ASSERT_EQ(rest.size(), 1u);
  EXPECT_EQ(rest[0].text, "third");
  EXPECT_TRUE(s.error().empty());
}

TEST(FrameSplitter, BinaryFrameRoundTripInterleavedWithText) {
  std::string payload = "\x00\x01\xff payload \n with newline";
  std::string stream = "textverb a b\n";
  stream += net::EncodeFrame(net::kOpInsertPoints, payload);
  stream += "after frame\n";

  FrameSplitter s(/*allow_binary=*/true);
  // Feed in 3-byte chunks: frames must reassemble across splits.
  for (size_t i = 0; i < stream.size(); i += 3) {
    s.Feed(stream.substr(i, 3));
  }
  auto msgs = DrainAll(s);
  ASSERT_EQ(msgs.size(), 3u);
  EXPECT_FALSE(msgs[0].binary);
  EXPECT_EQ(msgs[0].text, "textverb a b");
  ASSERT_TRUE(msgs[1].binary);
  EXPECT_EQ(msgs[1].opcode, net::kOpInsertPoints);
  EXPECT_EQ(msgs[1].payload, payload);
  EXPECT_FALSE(msgs[2].binary);
  EXPECT_EQ(msgs[2].text, "after frame");
}

TEST(FrameSplitter, OversizedFrameIsAConnectionFatalError) {
  std::string stream;
  stream.push_back(static_cast<char>(net::kFrameMagic));
  stream.push_back(static_cast<char>(net::kOpInsertPoints));
  net::PutU32(&stream, static_cast<uint32_t>(net::kMaxFramePayload + 1));
  FrameSplitter s(/*allow_binary=*/true);
  s.Feed(stream);
  WireMessage m;
  EXPECT_FALSE(s.Next(&m));
  EXPECT_NE(s.error().find("exceeds"), std::string::npos);
  // Latches: no further messages come out.
  s.Feed("emst x\n");
  EXPECT_FALSE(s.Next(&m));
}

TEST(FrameSplitter, TruncatedFrameAtEofIsAnError) {
  std::string frame = net::EncodeFrame(net::kOpGetLabels, "abcdef");
  FrameSplitter s(/*allow_binary=*/true);
  s.Feed(frame.substr(0, frame.size() - 2));
  WireMessage m;
  EXPECT_FALSE(s.Next(&m));
  EXPECT_TRUE(s.error().empty());  // just incomplete, not an error yet
  s.FlushEof();
  EXPECT_FALSE(s.Next(&m));
  EXPECT_NE(s.error().find("truncated"), std::string::npos);
}

TEST(FrameSplitter, LineCapIsConfigurableAndUnlimitedForTheRepl) {
  // TCP-style cap: a line past max_line_bytes is a latched error.
  FrameSplitter capped(/*allow_binary=*/true, /*max_line_bytes=*/16);
  capped.Feed(std::string(17, 'x') + "\n");
  WireMessage m;
  EXPECT_FALSE(capped.Next(&m));
  EXPECT_NE(capped.error().find("exceeds"), std::string::npos);

  // REPL-style unlimited: a multi-megabyte insert line (longer than the
  // TCP kMaxLineBytes) parses fine, as with the pre-refactor getline.
  FrameSplitter repl(/*allow_binary=*/false,
                     std::numeric_limits<size_t>::max());
  std::string big(net::kMaxLineBytes + 100, 'y');
  repl.Feed(big + "\n");
  ASSERT_TRUE(repl.Next(&m));
  EXPECT_EQ(m.text, big);
  EXPECT_TRUE(repl.error().empty());
}

TEST(FrameSplitter, TextModeTreatsMagicByteAsLineData) {
  FrameSplitter s(/*allow_binary=*/false);
  std::string line = "\x01 not a frame\n";
  s.Feed(line);
  WireMessage m;
  ASSERT_TRUE(s.Next(&m));
  EXPECT_FALSE(m.binary);
  EXPECT_EQ(m.text, "\x01 not a frame");
}

TEST(PayloadReader, BoundsCheckedReads) {
  std::string p;
  net::PutU16(&p, 7);
  net::PutU32(&p, 0xdeadbeef);
  net::PutF64(&p, 2.5);
  net::PayloadReader rd(p);
  EXPECT_EQ(rd.GetU16(), 7);
  EXPECT_EQ(rd.GetU32(), 0xdeadbeefu);
  EXPECT_EQ(rd.GetF64(), 2.5);
  EXPECT_TRUE(rd.ok());
  EXPECT_EQ(rd.remaining(), 0u);
  rd.GetU64();  // overrun
  EXPECT_FALSE(rd.ok());
}

TEST(LatencyHistogram, QuantilesInterpolateWithinBuckets) {
  net::LatencyHistogram h;
  for (int i = 0; i < 99; ++i) h.Record(3);   // bucket [2,4) → bound 3
  h.Record(1000);                             // bucket [512,1024) → 1023
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.QuantileUs(0.5), 3u);
  // Rank 99 is still in the 3µs bucket; only the very last sample (the
  // 1000µs outlier) reports its bucket's upper bound.
  EXPECT_EQ(h.QuantileUs(0.99), 3u);
  EXPECT_EQ(h.QuantileUs(1.0), 1023u);
}

// ---------------------------------------------------------------------------
// Scheduler

struct CollectedCompletion {
  uint64_t conn;
  uint64_t seq;
  std::string bytes;
  bool shed;
};

struct Collector {
  std::mutex mu;
  std::vector<CollectedCompletion> done;
  net::QueryScheduler::Completion Fn() {
    return [this](uint64_t c, uint64_t s, std::string b, bool sh) {
      std::lock_guard<std::mutex> lock(mu);
      done.push_back({c, s, std::move(b), sh});
    };
  }
};

/// Spins until the scheduler has picked up a job (the gate-blocked tests
/// must not race their follow-up submissions against worker startup).
void WaitForInflight(const net::QueryScheduler& sched) {
  for (int i = 0; i < 5000 && sched.inflight_now() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(sched.inflight_now(), 1u);
}

TEST(QueryScheduler, PerConnectionResponsesCompleteInRequestOrder) {
  Collector col;
  net::QueryScheduler::Options opts;
  opts.workers = 4;
  opts.max_queued = 1000;
  net::QueryScheduler sched(opts, col.Fn());
  for (int i = 0; i < 50; ++i) {
    sched.Submit(1, "busy", [i] {
      // Later jobs are faster: only the one-in-flight rule keeps order.
      std::this_thread::sleep_for(std::chrono::microseconds(500 - i * 10));
      return std::to_string(i);
    });
  }
  sched.Drain();
  ASSERT_EQ(col.done.size(), 50u);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(col.done[i].seq, static_cast<uint64_t>(i));
    EXPECT_EQ(col.done[i].bytes, std::to_string(i));
    EXPECT_FALSE(col.done[i].shed);
  }
  EXPECT_EQ(sched.served(), 50u);
  EXPECT_EQ(sched.shed(), 0u);
}

TEST(QueryScheduler, RoundRobinIsFairAcrossConnections) {
  Collector col;
  std::promise<void> gate;
  std::shared_future<void> opened = gate.get_future().share();
  net::QueryScheduler::Options opts;
  opts.workers = 1;  // deterministic dispatch order
  opts.max_queued = 1000;
  net::QueryScheduler sched(opts, col.Fn());
  sched.Submit(1, "busy", [opened] {
    opened.wait();
    return std::string("A0");
  });
  WaitForInflight(sched);
  // While A0 blocks the only worker: A floods, then B arrives.
  for (int i = 1; i <= 5; ++i) {
    sched.Submit(1, "busy", [i] { return "A" + std::to_string(i); });
  }
  for (int i = 0; i < 2; ++i) {
    sched.Submit(2, "busy", [i] { return "B" + std::to_string(i); });
  }
  gate.set_value();
  sched.Drain();
  ASSERT_EQ(col.done.size(), 8u);
  auto pos = [&](const std::string& b) {
    for (size_t i = 0; i < col.done.size(); ++i) {
      if (col.done[i].bytes == b) return i;
    }
    return size_t{999};
  };
  // B's two requests must not wait behind A's whole backlog.
  EXPECT_LT(pos("B0"), pos("A2"));
  EXPECT_LT(pos("B1"), pos("A3"));
}

TEST(QueryScheduler, OverloadShedsInOrderWithBusyReplies) {
  Collector col;
  std::promise<void> gate;
  std::shared_future<void> opened = gate.get_future().share();
  net::QueryScheduler::Options opts;
  opts.workers = 1;
  opts.max_queued = 2;  // j0 in flight, j1+j2 queued, j3+j4 shed
  net::QueryScheduler sched(opts, col.Fn());
  for (int i = 0; i < 5; ++i) {
    sched.Submit(7, "err busy job" + std::to_string(i), [opened, i] {
      if (i == 0) opened.wait();
      return "ok job" + std::to_string(i);
    });
    if (i == 0) WaitForInflight(sched);  // j1..j4 queue behind j0
  }
  gate.set_value();
  sched.Drain();
  ASSERT_EQ(col.done.size(), 5u);
  std::vector<bool> shed_want = {false, false, false, true, true};
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(col.done[i].seq, static_cast<uint64_t>(i));
    EXPECT_EQ(col.done[i].shed, shed_want[i]) << i;
    EXPECT_EQ(col.done[i].bytes,
              (shed_want[i] ? "err busy job" : "ok job") +
                  std::to_string(i));
  }
  EXPECT_EQ(sched.served(), 3u);
  EXPECT_EQ(sched.shed(), 2u);
}

TEST(QueryScheduler, CloseConnDropsQueuedWork) {
  Collector col;
  std::promise<void> gate;
  std::shared_future<void> opened = gate.get_future().share();
  net::QueryScheduler::Options opts;
  opts.workers = 1;
  opts.max_queued = 100;
  net::QueryScheduler sched(opts, col.Fn());
  std::atomic<int> ran{0};
  sched.Submit(1, "busy", [opened, &ran] {
    opened.wait();
    ++ran;
    return std::string("first");
  });
  WaitForInflight(sched);  // first job is running when CloseConn drops
                           // the rest
  for (int i = 0; i < 5; ++i) {
    sched.Submit(1, "busy", [&ran] {
      ++ran;
      return std::string("later");
    });
  }
  sched.CloseConn(1);
  gate.set_value();
  sched.Drain();
  sched.Stop();
  // The in-flight job finished; the queued five were dropped.
  EXPECT_EQ(ran.load(), 1);
  EXPECT_EQ(col.done.size(), 1u);
}

// ---------------------------------------------------------------------------
// Loopback TCP helpers

class TestClient {
 public:
  explicit TestClient(uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    connected_ = ::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                           sizeof addr) == 0;
  }
  ~TestClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool connected() const { return connected_; }

  void Send(const std::string& bytes) {
    size_t off = 0;
    while (off < bytes.size()) {
      ssize_t n = ::send(fd_, bytes.data() + off, bytes.size() - off, 0);
      ASSERT_GT(n, 0);
      off += static_cast<size_t>(n);
    }
  }

  void ShutdownWrite() { ::shutdown(fd_, SHUT_WR); }

  /// Blocking read of one '\n'-terminated line (returned with the '\n').
  /// Empty on EOF.
  std::string ReadLine() {
    for (;;) {
      size_t nl = buf_.find('\n');
      if (nl != std::string::npos) {
        std::string line = buf_.substr(0, nl + 1);
        buf_.erase(0, nl + 1);
        return line;
      }
      if (!FillBuf()) {
        std::string rest = std::move(buf_);
        buf_.clear();
        return rest;  // EOF: possibly a final partial line
      }
    }
  }

  /// Blocking read of one complete binary frame; false on EOF/garbage.
  bool ReadFrame(uint8_t* opcode, std::string* payload) {
    while (buf_.size() < net::kFrameHeaderBytes) {
      if (!FillBuf()) return false;
    }
    if (static_cast<uint8_t>(buf_[0]) != net::kFrameMagic) return false;
    uint32_t len = 0;
    for (int i = 0; i < 4; ++i) {
      len |= static_cast<uint32_t>(static_cast<uint8_t>(buf_[2 + i]))
             << (8 * i);
    }
    while (buf_.size() < net::kFrameHeaderBytes + len) {
      if (!FillBuf()) return false;
    }
    *opcode = static_cast<uint8_t>(buf_[1]);
    payload->assign(buf_, net::kFrameHeaderBytes, len);
    buf_.erase(0, net::kFrameHeaderBytes + len);
    return true;
  }

  /// Reads until EOF, returning everything (including buffered bytes).
  std::string ReadAll() {
    while (FillBuf()) {
    }
    std::string all = std::move(buf_);
    buf_.clear();
    return all;
  }

 private:
  bool FillBuf() {
    char tmp[16384];
    ssize_t n = ::read(fd_, tmp, sizeof tmp);
    if (n <= 0) return false;
    buf_.append(tmp, static_cast<size_t>(n));
    return true;
  }

  int fd_ = -1;
  bool connected_ = false;
  std::string buf_;
};

struct ServerFixture {
  explicit ServerFixture(net::NetServerOptions opts = DefaultOpts()) {
    server = std::make_unique<net::NetServer>(engine, opts);
    std::string err = server->Start();
    EXPECT_EQ(err, "");
    loop = std::thread([this] { server->Run(); });
  }

  ~ServerFixture() {
    server->Shutdown();
    loop.join();
  }

  static net::NetServerOptions DefaultOpts() {
    net::NetServerOptions opts;
    opts.port = 0;
    opts.workers = 4;
    opts.show_timing = false;  // transcripts compared across runs
    return opts;
  }

  ClusteringEngine engine;
  std::unique_ptr<net::NetServer> server;
  std::thread loop;
};

/// The per-client command script for the mixed-load integration test.
/// Each client works on its own datasets, so its expected transcript is
/// independent of the 31 other clients interleaving with it.
std::vector<std::string> ClientScript(int i) {
  std::string d = "d" + std::to_string(i);
  std::string s = "s" + std::to_string(i);
  size_t n = 200 + static_cast<size_t>(i);
  return {
      "gen " + d + " 2 uniform " + std::to_string(n) + " " +
          std::to_string(i + 1),
      "hdbscan " + d + " 8",
      "hdbscan " + d + " 8",
      "dbscan " + d + " 8 0.05",
      "clusters " + d + " 8 10",
      "emst " + d,
      "slink " + d + " 3",
      "dyn " + s + " 2",
      "insert " + s + " 0.5 0.5 1.5 1.5 2.5 2.5 3.5 3.5",
      "emst " + s,
      "delete " + s + " 1",
      "emst " + s,
      "geninsert " + s + " 2 varden 30 " + std::to_string(i + 3),
      "hdbscan " + s + " 4",
      "frobnicate " + d,
      "emst nosuch" + std::to_string(i),
  };
}

/// Single-threaded reference: the same commands through the shared
/// protocol core (== the REPL path) on a fresh engine.
std::vector<std::string> ReferenceAnswers(
    const std::vector<std::string>& lines) {
  ClusteringEngine engine;
  net::ProtocolOptions popts;
  popts.show_timing = false;
  net::ProtocolSession session(engine, popts);
  std::vector<std::string> out;
  for (const std::string& line : lines) {
    out.push_back(session.HandleLine(line).out);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Loopback integration

void RunMixedLoadIntegration(bool use_poll) {
  auto opts = ServerFixture::DefaultOpts();
  opts.use_poll = use_poll;
  ServerFixture fx(opts);

  constexpr int kClients = 32;
  std::vector<std::vector<std::string>> transcripts(kClients);
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&fx, &transcripts, i] {
      TestClient client(fx.server->port());
      ASSERT_TRUE(client.connected());
      std::vector<std::string> script = ClientScript(i);
      // Phase 1: strict request/response.
      for (const std::string& line : script) {
        client.Send(line + "\n");
        transcripts[i].push_back(client.ReadLine());
      }
      // Phase 2: the whole script pipelined in one write; responses must
      // come back complete and in order.
      std::string all;
      for (const std::string& line : script) all += line + "\n";
      client.Send(all);
      for (size_t k = 0; k < script.size(); ++k) {
        transcripts[i].push_back(client.ReadLine());
      }
      client.Send("quit\n");
      EXPECT_EQ(client.ReadAll(), "");  // server closes after quit
    });
  }
  for (auto& t : threads) t.join();

  for (int i = 0; i < kClients; ++i) {
    std::vector<std::string> script = ClientScript(i);
    // The reference replays both phases back to back on one session, so
    // stateful verbs (dyn/insert/geninsert gid counters, artifact cache
    // traces) line up exactly.
    std::vector<std::string> both = script;
    both.insert(both.end(), script.begin(), script.end());
    std::vector<std::string> want = ReferenceAnswers(both);
    ASSERT_EQ(transcripts[i].size(), want.size());
    for (size_t k = 0; k < want.size(); ++k) {
      EXPECT_EQ(transcripts[i][k], want[k])
          << "client " << i << " response " << k;
    }
  }

  net::ServerStatsSnapshot stats = fx.server->Stats();
  EXPECT_EQ(stats.dropped, 0u);
  EXPECT_EQ(stats.shed, 0u);
  EXPECT_EQ(stats.protocol_errors, 0u);
  EXPECT_EQ(stats.served, static_cast<uint64_t>(kClients) * 2 *
                              ClientScript(0).size());
}

TEST(NetServer, MixedLoad32ClientsBitMatchesReplEpoll) {
  RunMixedLoadIntegration(/*use_poll=*/false);
}

TEST(NetServer, MixedLoad32ClientsBitMatchesReplPollFallback) {
  RunMixedLoadIntegration(/*use_poll=*/true);
}

TEST(NetServer, BinaryInsertAndLabelFrames) {
  ServerFixture fx;
  TestClient client(fx.server->port());
  ASSERT_TRUE(client.connected());

  client.Send("dyn b 2\n");
  EXPECT_EQ(client.ReadLine(), "ok dyn b dim=2\n");

  // Two clusters of four points each, as one binary bulk-insert frame.
  std::vector<double> coords;
  for (int c = 0; c < 2; ++c) {
    for (int k = 0; k < 4; ++k) {
      coords.push_back(c * 100.0 + k * 0.1);
      coords.push_back(c * 100.0 + k * 0.1);
    }
  }
  std::string payload;
  net::PutU16(&payload, 1);
  payload += "b";
  net::PutU16(&payload, 2);
  net::PutU32(&payload, 8);
  for (double v : coords) net::PutF64(&payload, v);
  client.Send(net::EncodeFrame(net::kOpInsertPoints, payload));
  EXPECT_EQ(client.ReadLine(), "ok insert b n=8 gids=[0,8)\n");

  // Labels request: DBSCAN* at (minPts=2, eps=1.0) → the two clusters.
  std::string lp;
  net::PutU16(&lp, 1);
  lp += "b";
  lp += '\0';  // kind 0 = dbscan
  net::PutU32(&lp, 2);
  net::PutF64(&lp, 1.0);
  client.Send(net::EncodeFrame(net::kOpGetLabels, lp));
  uint8_t opcode = 0;
  std::string reply;
  ASSERT_TRUE(client.ReadFrame(&opcode, &reply));
  EXPECT_EQ(opcode, net::kOpLabelsReply);
  net::PayloadReader rd(reply);
  uint32_t count = rd.GetU32();
  ASSERT_EQ(count, 8u);
  std::vector<int32_t> labels(count);
  for (auto& l : labels) l = static_cast<int32_t>(rd.GetU32());
  EXPECT_TRUE(rd.ok());

  // Must bit-match the engine answered directly.
  ClusteringEngine ref;
  ref.registry().TryAddDynamic("b", 2);
  std::vector<std::vector<double>> rows;
  for (size_t i = 0; i < coords.size(); i += 2) {
    rows.push_back({coords[i], coords[i + 1]});
  }
  ref.InsertBatch("b", rows);
  EngineRequest req;
  req.type = QueryType::kDbscanStarAt;
  req.dataset = "b";
  req.min_pts = 2;
  req.eps = 1.0;
  EngineResponse r = ref.Run(req);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(labels, r.labels);

  // Unknown opcode answers a text err line, connection stays up.
  client.Send(net::EncodeFrame(0x7f, "xx"));
  EXPECT_EQ(client.ReadLine(), "err frame: unknown opcode 0x7f\n");
}

TEST(NetServer, MalformedFrameClosesConnectionWithProtocolError) {
  ServerFixture fx;
  TestClient client(fx.server->port());
  ASSERT_TRUE(client.connected());
  std::string bad;
  bad.push_back(static_cast<char>(net::kFrameMagic));
  bad.push_back(static_cast<char>(net::kOpInsertPoints));
  net::PutU32(&bad, static_cast<uint32_t>(net::kMaxFramePayload + 7));
  client.Send(bad);
  std::string line = client.ReadLine();
  EXPECT_NE(line.find("err protocol:"), std::string::npos) << line;
  EXPECT_EQ(client.ReadAll(), "");  // then EOF
  // Wait for the server to retire the connection before sampling stats.
  for (int i = 0; i < 100; ++i) {
    if (fx.server->Stats().protocol_errors > 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(fx.server->Stats().protocol_errors, 1u);
}

TEST(NetServer, FinalLineWithoutNewlineIsAnsweredOverTcp) {
  ServerFixture fx;
  TestClient client(fx.server->port());
  ASSERT_TRUE(client.connected());
  client.Send("emst nosuch");  // no '\n'
  client.ShutdownWrite();      // EOF reaches the server
  EXPECT_EQ(client.ReadLine(),
            "err emst nosuch: unknown dataset: nosuch\n");
  EXPECT_EQ(client.ReadAll(), "");
}

TEST(NetServer, StatsVerbReportsServerAndEngineCounters) {
  ServerFixture fx;
  TestClient client(fx.server->port());
  ASSERT_TRUE(client.connected());
  client.Send("gen st 2 uniform 100 1\nemst st\nstats\n");
  EXPECT_EQ(client.ReadLine(), "ok gen st dim=2 n=100 kind=uniform\n");
  client.ReadLine();  // emst answer
  std::string stats = client.ReadLine();
  EXPECT_NE(stats.find("ok stats conns=1"), std::string::npos) << stats;
  EXPECT_NE(stats.find("served=2"), std::string::npos) << stats;
  EXPECT_NE(stats.find("p99_us="), std::string::npos) << stats;
  EXPECT_NE(stats.find("engine_queries=1"), std::string::npos) << stats;
  EXPECT_NE(stats.find("engine_builds=1"), std::string::npos) << stats;
  // Build-executor counters (the engine's parallel artifact executor).
  EXPECT_NE(stats.find("workers="), std::string::npos) << stats;
  EXPECT_NE(stats.find("builds_total="), std::string::npos) << stats;
  EXPECT_NE(stats.find("concurrent_builds=0"), std::string::npos) << stats;
  EXPECT_NE(stats.find("peak_builds="), std::string::npos) << stats;
}

// Reads one `metrics` reply: exposition lines up to the trailing
// "ok metrics" marker, returned as one string (marker excluded).
std::string ReadMetricsReply(TestClient& client) {
  std::string body;
  for (;;) {
    std::string line = client.ReadLine();
    if (line.empty() || line == "ok metrics\n") break;
    body += line;
  }
  return body;
}

// Scraping the metrics verb while other clients keep the serving path hot
// must be data-race-free (this test is in the TSan CI job's target list)
// and every scrape must be a complete, well-formed exposition.
TEST(NetServer, MetricsScrapeWhileServingIsRaceFree) {
  ServerFixture fx;
  std::atomic<bool> stop{false};
  std::vector<std::thread> load;
  for (int t = 0; t < 2; ++t) {
    load.emplace_back([&fx, &stop, t] {
      TestClient client(fx.server->port());
      ASSERT_TRUE(client.connected());
      std::string d = "m" + std::to_string(t);
      client.Send("gen " + d + " 2 uniform 300 " + std::to_string(t + 1) +
                  "\n");
      client.ReadLine();
      int m = 4;
      while (!stop.load(std::memory_order_relaxed)) {
        client.Send("hdbscan " + d + " " + std::to_string(4 + (m++ % 8)) +
                    "\n");
        ASSERT_NE(client.ReadLine().find("ok hdbscan"), std::string::npos);
      }
    });
  }
  std::vector<std::thread> scrapers;
  for (int t = 0; t < 2; ++t) {
    scrapers.emplace_back([&fx] {
      TestClient client(fx.server->port());
      ASSERT_TRUE(client.connected());
      for (int i = 0; i < 25; ++i) {
        client.Send("metrics\n");
        std::string body = ReadMetricsReply(client);
        EXPECT_NE(body.find("# TYPE parhc_server_served_total counter"),
                  std::string::npos);
        EXPECT_NE(body.find("parhc_engine_queries_total"),
                  std::string::npos);
        EXPECT_NE(body.find("parhc_server_request_latency_us_bucket"),
                  std::string::npos);
        // JSON mode is a single line ending in the closing brace.
        client.Send("metrics json\n");
        std::string json = client.ReadLine();
        EXPECT_EQ(json.rfind("{\"metrics\":[", 0), 0u) << json;
        EXPECT_EQ(json.substr(json.size() - 3), "]}\n");
      }
    });
  }
  for (auto& t : scrapers) t.join();
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : load) t.join();

  // Quiesced: the per-verb counters must account for every served
  // response (the invariant ci/check_metrics.py asserts over the wire).
  TestClient client(fx.server->port());
  ASSERT_TRUE(client.connected());
  client.Send("metrics\n");
  std::string body = ReadMetricsReply(client);
  uint64_t served = 0, by_verb = 0;
  std::istringstream lines(body);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.rfind("parhc_server_served_total ", 0) == 0) {
      served = std::stoull(line.substr(line.rfind(' ') + 1));
    } else if (line.rfind("parhc_server_requests_total{", 0) == 0) {
      by_verb += std::stoull(line.substr(line.rfind(' ') + 1));
    }
  }
  // The final scrape itself was served but counted after the reply was
  // rendered, so allow the snapshot to trail by that one in-flight verb.
  EXPECT_GE(by_verb + 1, served);
  EXPECT_LE(by_verb, served);
  EXPECT_GT(served, 0u);
}

// --- Trace dump schema + nesting -----------------------------------------

struct TraceEvent {
  std::string name;
  std::string cat;
  double ts = 0;   // µs
  double dur = 0;  // µs
  int pid = 0;
  int tid = 0;
  unsigned long long trace = 0;
};

/// Minimal parser for the exact Chrome trace_event JSON the tracer emits
/// (schema validation: any drift in the field layout fails the sscanf).
std::vector<TraceEvent> ParseTraceDump(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  EXPECT_TRUE(f.good()) << path;
  std::string json((std::istreambuf_iterator<char>(f)),
                   std::istreambuf_iterator<char>());
  EXPECT_EQ(json.rfind("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[", 0),
            0u);
  std::vector<TraceEvent> events;
  size_t pos = 0;
  const std::string kName = "{\"name\":\"";
  while ((pos = json.find(kName, pos)) != std::string::npos) {
    TraceEvent e;
    size_t name_begin = pos + kName.size();
    size_t name_end = json.find("\",\"cat\":\"", name_begin);
    EXPECT_NE(name_end, std::string::npos);
    e.name = json.substr(name_begin, name_end - name_begin);
    size_t cat_begin = name_end + 9;
    size_t cat_end = json.find("\",\"ph\":\"X\",", cat_begin);
    EXPECT_NE(cat_end, std::string::npos);
    e.cat = json.substr(cat_begin, cat_end - cat_begin);
    int matched = std::sscanf(
        json.c_str() + cat_end,
        "\",\"ph\":\"X\",\"ts\":%lf,\"dur\":%lf,\"pid\":%d,\"tid\":%d,"
        "\"args\":{\"trace\":%llu}}",
        &e.ts, &e.dur, &e.pid, &e.tid, &e.trace);
    EXPECT_EQ(matched, 5) << e.name;
    events.push_back(std::move(e));
    pos = name_end;
  }
  return events;
}

// End-to-end tracing over TCP: `--trace`-style startup, a few traced
// requests, `trace dump`, then automated validation that every span
// carries the schema fields and that each request's `queue` span nests
// (by time containment) inside its `request:<verb>` span.
TEST(NetServer, TraceDumpSpansNestByTimeContainment) {
  auto opts = ServerFixture::DefaultOpts();
  opts.trace = true;
  ServerFixture fx(opts);
  obs::Tracer::Get().Clear();  // drop spans from earlier tests

  TestClient client(fx.server->port());
  ASSERT_TRUE(client.connected());
  client.Send("gen tr 2 uniform 400 7\n");
  ASSERT_NE(client.ReadLine().find("ok gen tr"), std::string::npos);
  client.Send("emst tr\nhdbscan tr 8\nemst tr\n");
  for (int i = 0; i < 3; ++i) {
    ASSERT_NE(client.ReadLine().find("ok "), std::string::npos);
  }
  std::string path = ::testing::TempDir() + "/net_trace_dump.json";
  client.Send("trace dump " + path + "\n");
  std::string reply = client.ReadLine();
  ASSERT_EQ(reply.rfind("ok trace dump ", 0), 0u) << reply;

  std::vector<TraceEvent> events = ParseTraceDump(path);
  std::remove(path.c_str());
  ASSERT_GE(events.size(), 8u);  // 4 requests × (request + queue) minimum

  std::map<unsigned long long, std::vector<const TraceEvent*>> by_trace;
  for (const TraceEvent& e : events) {
    EXPECT_FALSE(e.name.empty());
    EXPECT_TRUE(e.cat == "net" || e.cat == "engine" || e.cat == "algo")
        << e.name << " cat=" << e.cat;
    EXPECT_EQ(e.pid, 1);
    EXPECT_GE(e.tid, 1);
    EXPECT_GE(e.dur, 0.0);
    if (e.trace != 0) by_trace[e.trace].push_back(&e);
  }

  // Every traced request: exactly one request:<verb> root, and every
  // other span of that trace fits inside it on the shared clock.
  constexpr double kEpsUs = 0.002;  // dump truncates ns to fixed point
  int requests_seen = 0, children_checked = 0;
  for (const auto& [trace_id, spans] : by_trace) {
    const TraceEvent* root = nullptr;
    for (const TraceEvent* e : spans) {
      if (e->name.rfind("request:", 0) == 0) {
        EXPECT_EQ(root, nullptr) << "two roots for trace " << trace_id;
        root = e;
      }
    }
    ASSERT_NE(root, nullptr) << "orphan spans for trace " << trace_id;
    ++requests_seen;
    for (const TraceEvent* e : spans) {
      if (e == root) continue;
      EXPECT_GE(e->ts + kEpsUs, root->ts)
          << e->name << " starts before its " << root->name;
      EXPECT_LE(e->ts + e->dur, root->ts + root->dur + kEpsUs)
          << e->name << " ends after its " << root->name;
      ++children_checked;
    }
  }
  EXPECT_GE(requests_seen, 4);
  EXPECT_GE(children_checked, 4);  // at least the queue spans

  obs::Tracer::Get().Disable();
  obs::Tracer::Get().Clear();
}

TEST(NetServer, IdleConnectionsAreClosed) {
  auto opts = ServerFixture::DefaultOpts();
  opts.idle_timeout_ms = 150;
  ServerFixture fx(opts);
  TestClient client(fx.server->port());
  ASSERT_TRUE(client.connected());
  auto t0 = std::chrono::steady_clock::now();
  EXPECT_EQ(client.ReadAll(), "");  // server closes us
  auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_LT(elapsed, std::chrono::seconds(30));
  EXPECT_EQ(fx.server->Stats().idle_closed, 1u);
}

TEST(NetServer, GracefulDrainAnswersEverythingAccepted) {
  auto opts = ServerFixture::DefaultOpts();
  opts.workers = 1;  // keep a backlog at shutdown time
  // The assertion is the drain *guarantee* (everything accepted gets
  // answered), not the deadline: under sanitizer builds the queued
  // builds can outlast the 5 s default, which would legitimately force-
  // close the tail.
  opts.drain_timeout_ms = 300000;
  ServerFixture fx(opts);
  TestClient client(fx.server->port());
  ASSERT_TRUE(client.connected());
  client.Send("gen dr 2 uniform 3000 1\n");
  EXPECT_EQ(client.ReadLine(), "ok gen dr dim=2 n=3000 kind=uniform\n");
  // Pipeline 20 distinct-minPts queries (each builds artifacts → slow
  // enough that some are still queued when the drain starts).
  std::string burst;
  constexpr int kQueries = 20;
  for (int m = 0; m < kQueries; ++m) {
    burst += "hdbscan dr " + std::to_string(4 + m) + "\n";
  }
  client.Send(burst);
  // Give the event loop ample time to parse and submit the burst (the
  // submission path does not wait on the busy worker), then drain.
  std::this_thread::sleep_for(std::chrono::milliseconds(500));
  fx.server->Shutdown();
  int answered = 0;
  for (;;) {
    std::string line = client.ReadLine();
    if (line.empty()) break;  // EOF after drain
    EXPECT_NE(line.find("ok hdbscan dr"), std::string::npos) << line;
    ++answered;
  }
  EXPECT_EQ(answered, kQueries);
  // ~ServerFixture joins Run(); reaching here without hanging is the
  // drain-completes guarantee.
}

}  // namespace
}  // namespace parhc
