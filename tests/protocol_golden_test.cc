// Golden-transcript lock on the protocol refactor: the REPL's batch-mode
// output must be byte-identical to the pre-split examples/parhc_server.cpp
// implementation.
//
// tests/golden/repl_golden.txt was captured by piping
// tests/golden/repl_script.txt through the *original* monolithic
// parhc_server binary (commit 1498fd7, before the verb logic moved into
// src/net/protocol.cc), with one normalization: wall-clock `secs=...`
// fields are rewritten to `secs=X` (the only nondeterministic bytes in
// the transcript). This test replays the script through the shared
// protocol core exactly the way the REPL main() does — FrameSplitter in
// text mode, FlushEof at end of input — applies the same normalization,
// and compares the whole transcript.
//
// The transcript was captured with one scheduler worker; artifact values
// (MST weights, dendrogram heights) are summed in deterministic order for
// a fixed worker count, so the test pins the worker count too.
#include <gtest/gtest.h>

#include <fstream>
#include <regex>
#include <sstream>
#include <string>

#include "net/frame.h"
#include "net/protocol.h"
#include "parhc.h"

namespace parhc {
namespace {

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::string NormalizeSecs(const std::string& s) {
  static const std::regex kSecs("secs=[-+0-9.eE]+");
  return std::regex_replace(s, kSecs, "secs=X");
}

TEST(ProtocolGolden, ReplBatchOutputIsByteIdentical) {
  SetNumWorkers(1);  // the golden transcript was captured single-worker

  const std::string dir = std::string(PARHC_SOURCE_DIR) + "/tests/golden/";
  const std::string script = ReadFileOrDie(dir + "repl_script.txt");
  const std::string golden = ReadFileOrDie(dir + "repl_golden.txt");

  ClusteringEngine engine;
  net::ProtocolSession session(engine);
  net::FrameSplitter splitter(/*allow_binary=*/false);
  splitter.Feed(script);
  splitter.FlushEof();

  std::string transcript;
  net::WireMessage msg;
  bool quit = false;
  while (!quit && splitter.Next(&msg)) {
    net::ProtocolResult res = session.Handle(msg);
    transcript += res.out;
    quit = res.quit;
  }
  EXPECT_TRUE(quit) << "script must end with quit";
  EXPECT_EQ(NormalizeSecs(transcript), NormalizeSecs(golden));
}

/// The partial-line fix: a final command without a trailing newline is
/// processed and answered, not dropped (both front-ends share this
/// splitter-driven input path).
TEST(ProtocolGolden, FinalLineWithoutNewlineIsAnswered) {
  SetNumWorkers(1);
  ClusteringEngine engine;
  net::ProtocolSession session(engine);
  net::FrameSplitter splitter(/*allow_binary=*/false);
  splitter.Feed("gen g 2 uniform 50 1\nemst g");  // no trailing '\n'
  splitter.FlushEof();

  std::string transcript;
  net::WireMessage msg;
  while (splitter.Next(&msg)) transcript += session.Handle(msg).out;
  EXPECT_NE(transcript.find("ok gen g"), std::string::npos);
  EXPECT_NE(transcript.find("ok emst g mst_edges=49"), std::string::npos);
}

}  // namespace
}  // namespace parhc
