// Golden-transcript lock on the protocol refactor: the REPL's batch-mode
// output must be byte-identical to the pre-split examples/parhc_server.cpp
// implementation.
//
// tests/golden/repl_golden.txt was captured by piping
// tests/golden/repl_script.txt through the *original* monolithic
// parhc_server binary (commit 1498fd7, before the verb logic moved into
// src/net/protocol.cc), with one normalization: wall-clock `secs=...`
// fields are rewritten to `secs=X` (the only nondeterministic bytes in
// the transcript). This test replays the script through the shared
// protocol core exactly the way the REPL main() does — FrameSplitter in
// text mode, FlushEof at end of input — applies the same normalization,
// and compares the whole transcript.
//
// The transcript was captured with one scheduler worker; artifact values
// (MST weights, dendrogram heights) are summed in deterministic order for
// a fixed worker count, so the test pins the worker count too.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <regex>
#include <sstream>
#include <string>

#include "net/frame.h"
#include "net/protocol.h"
#include "net/stats.h"
#include "obs/observability.h"
#include "obs/sources.h"
#include "parhc.h"

namespace parhc {
namespace {

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::string NormalizeSecs(const std::string& s) {
  static const std::regex kSecs("secs=[-+0-9.eE]+");
  return std::regex_replace(s, kSecs, "secs=X");
}

TEST(ProtocolGolden, ReplBatchOutputIsByteIdentical) {
  SetNumWorkers(1);  // the golden transcript was captured single-worker

  const std::string dir = std::string(PARHC_SOURCE_DIR) + "/tests/golden/";
  const std::string script = ReadFileOrDie(dir + "repl_script.txt");
  const std::string golden = ReadFileOrDie(dir + "repl_golden.txt");

  ClusteringEngine engine;
  net::ProtocolSession session(engine);
  net::FrameSplitter splitter(/*allow_binary=*/false);
  splitter.Feed(script);
  splitter.FlushEof();

  std::string transcript;
  net::WireMessage msg;
  bool quit = false;
  while (!quit && splitter.Next(&msg)) {
    net::ProtocolResult res = session.Handle(msg);
    transcript += res.out;
    quit = res.quit;
  }
  EXPECT_TRUE(quit) << "script must end with quit";
  EXPECT_EQ(NormalizeSecs(transcript), NormalizeSecs(golden));
}

/// The partial-line fix: a final command without a trailing newline is
/// processed and answered, not dropped (both front-ends share this
/// splitter-driven input path).
TEST(ProtocolGolden, FinalLineWithoutNewlineIsAnswered) {
  SetNumWorkers(1);
  ClusteringEngine engine;
  net::ProtocolSession session(engine);
  net::FrameSplitter splitter(/*allow_binary=*/false);
  splitter.Feed("gen g 2 uniform 50 1\nemst g");  // no trailing '\n'
  splitter.FlushEof();

  std::string transcript;
  net::WireMessage msg;
  while (splitter.Next(&msg)) transcript += session.Handle(msg).out;
  EXPECT_NE(transcript.find("ok gen g"), std::string::npos);
  EXPECT_NE(transcript.find("ok emst g mst_edges=49"), std::string::npos);
}

// --- Metrics exposition golden -------------------------------------------

/// Masks the sample value (the text after the last space) on every
/// non-comment exposition line: counters move with library internals, but
/// the family names, help text, types, label sets, bucket bounds, and
/// ordering are the API this golden pins.
std::string MaskSampleValues(const std::string& exposition) {
  std::istringstream in(exposition);
  std::string out, line;
  while (std::getline(in, line)) {
    if (!line.empty() && line[0] != '#') {
      size_t sp = line.rfind(' ');
      if (sp != std::string::npos) line = line.substr(0, sp) + " X";
    }
    out += line;
    out += '\n';
  }
  return out;
}

// The full `metrics` verb output — every family each Register* source
// exports, through the same protocol core both front-ends use — must
// match tests/golden/metrics_golden.txt line for line (values masked).
// Regenerate with PARHC_UPDATE_GOLDEN=1 after intentionally adding or
// renaming a metric.
TEST(ProtocolGolden, MetricsExpositionMatchesGolden) {
  SetNumWorkers(1);
  ClusteringEngine engine;
  obs::Observability ob;

  // Deterministic server-side instruments: a fixed stats snapshot, a
  // latency histogram with three known samples, two verbs bumped.
  struct FixedStats : net::ServerStatsSource {
    net::ServerStatsSnapshot Stats() const override {
      net::ServerStatsSnapshot s;
      s.connections_now = 3;
      s.served = 41;
      s.bytes_in = 1000;
      s.bytes_out = 2000;
      return s;
    }
  } fixed;
  net::LatencyHistogram latency;
  latency.Record(3);
  latency.Record(100);
  latency.Record(100000);
  obs::VerbCounters verbs;
  verbs.Bump("emst");
  verbs.Bump("emst");
  verbs.Bump("stats");

  obs::RegisterServerMetrics(ob.metrics, fixed, &latency, &verbs);
  obs::RegisterEngineMetrics(ob.metrics, engine);
  obs::RegisterAlgorithmMetrics(ob.metrics);
  obs::RegisterObsMetrics(ob.metrics, ob.slowlog);

  net::ProtocolOptions popts;
  popts.show_timing = false;
  popts.obs = &ob;
  net::ProtocolSession session(engine, popts);
  // One dataset so the per-dataset gauge block (and its labels) is pinned.
  EXPECT_EQ(session.HandleLine("gen gm 2 uniform 100 1").out,
            "ok gen gm dim=2 n=100 kind=uniform\n");
  EXPECT_NE(session.HandleLine("emst gm").out.find("ok emst gm"),
            std::string::npos);

  std::string out = session.HandleLine("metrics").out;
  const std::string kMarker = "ok metrics\n";
  ASSERT_GE(out.size(), kMarker.size());
  EXPECT_EQ(out.substr(out.size() - kMarker.size()), kMarker);
  std::string masked = MaskSampleValues(out.substr(0, out.size() - kMarker.size()));

  const std::string path =
      std::string(PARHC_SOURCE_DIR) + "/tests/golden/metrics_golden.txt";
  if (std::getenv("PARHC_UPDATE_GOLDEN") != nullptr) {
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    f << masked;
    ASSERT_TRUE(f.good());
    GTEST_SKIP() << "regenerated " << path;
  }
  EXPECT_EQ(masked, ReadFileOrDie(path));
}

}  // namespace
}  // namespace parhc
