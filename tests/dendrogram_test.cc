// Dendrogram construction (sequential + parallel), reachability plots, and
// flat cluster extraction, validated against Prim-based references.
#include <gtest/gtest.h>

#include <map>
#include <random>

#include "dendrogram/builder.h"
#include "dendrogram/cluster_extraction.h"
#include "dendrogram/reachability.h"
#include "emst/emst_memogfk.h"
#include "graph/prim.h"
#include "hdbscan/hdbscan.h"
#include "test_util.h"

namespace parhc {
namespace {

using test::RandomPoints;

/// Random spanning tree on n vertices with distinct random weights.
std::vector<WeightedEdge> RandomTree(size_t n, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> u(0.0, 1.0);
  std::vector<WeightedEdge> edges;
  for (uint32_t v = 1; v < n; ++v) {
    edges.push_back({static_cast<uint32_t>(rng() % v), v, u(rng)});
  }
  std::shuffle(edges.begin(), edges.end(), rng);
  return edges;
}

TEST(DendrogramSeq, SingleEdge) {
  std::vector<WeightedEdge> edges{{0, 1, 2.5}};
  Dendrogram d = BuildDendrogramSequential(2, edges, 0);
  EXPECT_TRUE(d.Validate());
  EXPECT_EQ(d.root(), 2u);
  EXPECT_EQ(d.Left(2), 0u);   // source goes left
  EXPECT_EQ(d.Right(2), 1u);
  EXPECT_DOUBLE_EQ(d.Height(2), 2.5);
  // Rooted at 1, the order flips.
  Dendrogram d1 = BuildDendrogramSequential(2, edges, 1);
  EXPECT_EQ(d1.Left(2), 1u);
  EXPECT_EQ(d1.Right(2), 0u);
}

TEST(DendrogramSeq, PaperFigure1Example) {
  // The HDBSCAN* MST of Figure 1a: edges with mutual-reachability weights.
  // Vertices: a=0 b=1 c=2 d=3 e=4 f=5 g=6 h=7 i=8.
  std::vector<WeightedEdge> edges{
      {0, 3, 4.0},                 // a-d
      {3, 1, std::sqrt(10.0)},     // d-b
      {1, 2, 6.0},                 // b-c
      {3, 4, std::sqrt(17.0)},     // d-e
      {4, 6, 4.0 - 1e-9},          // e-g (weight 4, perturbed to break tie)
      {6, 5, std::sqrt(5.0)},      // g-f
      {5, 7, 2.0 * std::sqrt(2.0)},// f-h
      {7, 8, std::sqrt(346.0)},    // h-i
  };
  Dendrogram d = BuildDendrogramSequential(9, edges, 0);
  ASSERT_TRUE(d.Validate());
  // Root must be the heaviest edge h-i (sqrt(346) ~ 18.6).
  EXPECT_NEAR(d.Height(d.root()), std::sqrt(346.0), 1e-12);
  // Prim from a: a, d (4), b (sqrt10), e (sqrt17), g (~4), f (sqrt5),
  // h (2 sqrt2), c (6), i (sqrt346).
  ReachabilityPlot plot = ComputeReachability(d);
  std::vector<uint32_t> want_order{0, 3, 1, 4, 6, 5, 7, 2, 8};
  ASSERT_EQ(plot.order, want_order);
  EXPECT_TRUE(std::isinf(plot.value[0]));
  EXPECT_NEAR(plot.value[1], 4.0, 1e-12);              // a-d
  EXPECT_NEAR(plot.value[2], std::sqrt(10.0), 1e-12);  // d-b
  EXPECT_NEAR(plot.value[3], std::sqrt(17.0), 1e-12);  // d-e
  EXPECT_NEAR(plot.value[7], 6.0, 1e-12);              // b-c
  EXPECT_NEAR(plot.value[8], std::sqrt(346.0), 1e-12); // h-i
}

// The critical property (Theorem 4.2): the ordered dendrogram's in-order
// leaves and merge heights reproduce the Prim traversal reachability plot.
class OrderedDendrogramTest
    : public ::testing::TestWithParam<std::tuple<size_t, int>> {};

TEST_P(OrderedDendrogramTest, ReachabilityMatchesPrimReference) {
  auto [n, seed] = GetParam();
  auto edges = RandomTree(n, seed);
  for (uint32_t source : {0u, static_cast<uint32_t>(n / 2),
                          static_cast<uint32_t>(n - 1)}) {
    Dendrogram d = BuildDendrogramSequential(n, edges, source);
    ReachabilityPlot plot = ComputeReachability(d);
    auto [ref_order, ref_value] =
        PrimReachabilityReference(n, edges, source);
    ASSERT_EQ(plot.order, ref_order) << "source " << source;
    for (size_t i = 1; i < n; ++i) {
      ASSERT_DOUBLE_EQ(plot.value[i], ref_value[i]) << "pos " << i;
    }
  }
}

TEST_P(OrderedDendrogramTest, ParallelEqualsSequential) {
  auto [n, seed] = GetParam();
  auto edges = RandomTree(n, seed + 100);
  uint32_t source = static_cast<uint32_t>(seed) % n;
  Dendrogram ds = BuildDendrogramSequential(n, edges, source);
  // Tiny cutoff forces deep parallel recursion even on small inputs.
  Dendrogram dp = BuildDendrogramParallel(n, edges, source, /*seq_cutoff=*/4);
  ASSERT_TRUE(ds.Validate());
  ASSERT_TRUE(dp.Validate());
  // Ordered dendrograms are unique: identical in-order traversals.
  ReachabilityPlot ps = ComputeReachability(ds);
  ReachabilityPlot pp = ComputeReachability(dp);
  ASSERT_EQ(ps.order, pp.order);
  for (size_t i = 1; i < n; ++i) {
    ASSERT_DOUBLE_EQ(ps.value[i], pp.value[i]) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, OrderedDendrogramTest,
    ::testing::Combine(::testing::Values(2, 3, 5, 17, 100, 1000, 5000),
                       ::testing::Values(1, 2, 3)));

TEST(DendrogramParallel, PathologicalSortedPath) {
  // Increasing weights along a path — the warm-up algorithm's worst case
  // (Section 4.2); the heavy/light algorithm must still be correct.
  constexpr size_t kN = 3000;
  std::vector<WeightedEdge> edges;
  for (uint32_t i = 0; i + 1 < kN; ++i) {
    edges.push_back({i, i + 1, static_cast<double>(i + 1)});
  }
  Dendrogram dp = BuildDendrogramParallel(kN, edges, 0, 16);
  ReachabilityPlot plot = ComputeReachability(dp);
  // Prim from 0 walks the path in order with reach value = edge weight.
  for (uint32_t i = 0; i < kN; ++i) {
    ASSERT_EQ(plot.order[i], i);
    if (i > 0) {
      ASSERT_DOUBLE_EQ(plot.value[i], static_cast<double>(i));
    }
  }
}

TEST(DendrogramParallel, StarTree) {
  constexpr size_t kN = 2000;
  std::mt19937_64 rng(3);
  std::uniform_real_distribution<double> u(0.0, 1.0);
  std::vector<WeightedEdge> edges;
  for (uint32_t i = 1; i < kN; ++i) {
    edges.push_back({0, i, u(rng)});
  }
  Dendrogram ds = BuildDendrogramSequential(kN, edges, 0);
  Dendrogram dp = BuildDendrogramParallel(kN, edges, 0, 8);
  ReachabilityPlot ps = ComputeReachability(ds);
  ReachabilityPlot pp = ComputeReachability(dp);
  EXPECT_EQ(ps.order, pp.order);
}

// The Theorem 4.2 parallel extraction (Euler threading + list ranking)
// must agree with the sequential in-order traversal on every shape.
class ParallelReachabilityTest : public ::testing::TestWithParam<size_t> {};

TEST_P(ParallelReachabilityTest, MatchesSequentialExtraction) {
  size_t n = GetParam();
  auto edges = RandomTree(n, n * 5 + 1);
  Dendrogram d = BuildDendrogramSequential(n, edges, 0);
  ReachabilityPlot seq = ComputeReachability(d);
  ReachabilityPlot par = ComputeReachabilityParallel(d);
  ASSERT_EQ(par.order, seq.order);
  ASSERT_EQ(par.value.size(), seq.value.size());
  EXPECT_TRUE(std::isinf(par.value[0]));
  for (size_t i = 1; i < n; ++i) {
    ASSERT_DOUBLE_EQ(par.value[i], seq.value[i]) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, ParallelReachabilityTest,
                         ::testing::Values(1, 2, 3, 9, 257, 4096));

TEST(ParallelReachability, LinearDepthChainDendrogram) {
  // Sorted-path tree: the dendrogram is a maximally unbalanced chain, the
  // worst case for spine pointer jumping.
  constexpr size_t kN = 5000;
  std::vector<WeightedEdge> edges;
  for (uint32_t i = 0; i + 1 < kN; ++i) {
    edges.push_back({i, i + 1, static_cast<double>(i + 1)});
  }
  Dendrogram d = BuildDendrogramParallel(kN, edges, 0);
  ReachabilityPlot par = ComputeReachabilityParallel(d);
  ReachabilityPlot seq = ComputeReachability(d);
  EXPECT_EQ(par.order, seq.order);
}

TEST(DendrogramParallel, HeightsMonotoneOnRootPaths) {
  auto edges = RandomTree(4000, 9);
  Dendrogram d = BuildDendrogramParallel(4000, edges, 0, 64);
  // Walk each leaf's root path: heights never decrease.
  for (uint32_t leaf = 0; leaf < 4000; leaf += 37) {
    double h = -1;
    uint32_t cur = d.Parent(leaf);
    while (cur != Dendrogram::kNone) {
      ASSERT_GE(d.Height(cur), h);
      h = d.Height(cur);
      cur = d.Parent(cur);
    }
  }
}

// ---------------------------------------------------------------------------
// Single-linkage clustering via dendrogram cuts.

TEST(SingleLinkage, CutEqualsThresholdComponents) {
  auto pts = RandomPoints<2>(400, 12);
  auto mst = EmstMemoGfk(pts);
  Dendrogram d = BuildDendrogramParallel(pts.size(), mst, 0);
  for (double eps : {0.5, 2.0, 5.0, 20.0}) {
    auto labels = CutClusters(d, eps);
    // Reference: components of the eps-threshold graph (equivalently, of
    // the EMST edges with weight <= eps).
    UnionFind uf(pts.size());
    for (auto& e : mst) {
      if (e.w <= eps) uf.Union(e.u, e.v);
    }
    std::map<std::pair<int32_t, uint32_t>, int> seen;
    for (uint32_t i = 0; i < pts.size(); ++i) {
      for (uint32_t j = i + 1; j < pts.size(); ++j) {
        ASSERT_EQ(labels[i] == labels[j], uf.Connected(i, j))
            << i << "," << j << " eps=" << eps;
      }
    }
  }
}

TEST(SingleLinkage, KClustersProducesExactlyK) {
  auto pts = RandomPoints<2>(300, 8);
  auto mst = EmstMemoGfk(pts);
  Dendrogram d = BuildDendrogramSequential(pts.size(), mst, 0);
  for (size_t k : {1ul, 2ul, 5ul, 37ul, 300ul}) {
    auto labels = KClusters(d, k);
    std::set<int32_t> distinct(labels.begin(), labels.end());
    EXPECT_EQ(distinct.size(), k);
    EXPECT_FALSE(distinct.count(kNoise));
  }
}

TEST(SingleLinkage, KClustersNested) {
  // k and k+1 clusterings are nested: the k+1 partition refines k.
  auto pts = RandomPoints<3>(200, 15);
  auto mst = EmstMemoGfk(pts);
  Dendrogram d = BuildDendrogramSequential(pts.size(), mst, 0);
  auto l5 = KClusters(d, 5);
  auto l6 = KClusters(d, 6);
  std::map<int32_t, std::set<int32_t>> image;
  for (size_t i = 0; i < pts.size(); ++i) {
    image[l6[i]].insert(l5[i]);
  }
  for (auto& [fine, coarse_set] : image) {
    EXPECT_EQ(coarse_set.size(), 1u) << "cluster " << fine << " split";
  }
}

// ---------------------------------------------------------------------------
// DBSCAN* extraction from the HDBSCAN* dendrogram vs brute force.

std::vector<int32_t> BruteDbscanStar(const std::vector<Point<2>>& pts,
                                     int min_pts, double eps) {
  size_t n = pts.size();
  auto cd = test::BruteCoreDistances(pts, min_pts);
  UnionFind uf(n);
  for (uint32_t i = 0; i < n; ++i) {
    if (cd[i] > eps) continue;
    for (uint32_t j = i + 1; j < n; ++j) {
      if (cd[j] > eps) continue;
      if (Distance(pts[i], pts[j]) <= eps) uf.Union(i, j);
    }
  }
  std::vector<int32_t> label(n, kNoise);
  std::map<uint32_t, int32_t> ids;
  for (uint32_t i = 0; i < n; ++i) {
    if (cd[i] > eps) continue;
    uint32_t r = uf.Find(i);
    auto [it, inserted] = ids.try_emplace(r, static_cast<int32_t>(ids.size()));
    label[i] = it->second;
  }
  return label;
}

void ExpectSamePartition(const std::vector<int32_t>& a,
                         const std::vector<int32_t>& b) {
  ASSERT_EQ(a.size(), b.size());
  std::map<int32_t, int32_t> fwd, bwd;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] == kNoise || b[i] == kNoise) {
      ASSERT_EQ(a[i], b[i]) << "noise mismatch at " << i;
      continue;
    }
    auto [f, fi] = fwd.try_emplace(a[i], b[i]);
    ASSERT_EQ(f->second, b[i]) << "label mapping not injective at " << i;
    auto [g, gi] = bwd.try_emplace(b[i], a[i]);
    ASSERT_EQ(g->second, a[i]) << "label mapping not functional at " << i;
  }
}

class DbscanStarTest : public ::testing::TestWithParam<std::tuple<int, double>> {
};

TEST_P(DbscanStarTest, MatchesBruteForce) {
  auto [min_pts, eps_scale] = GetParam();
  auto pts = SeedSpreaderVarden<2>(400, 19, 3);
  auto result = Hdbscan(pts, min_pts);
  // Pick eps as a quantile of MST weights scaled by the parameter.
  std::vector<double> ws;
  for (auto& e : result.mst) ws.push_back(e.w);
  std::sort(ws.begin(), ws.end());
  double eps = ws[static_cast<size_t>(ws.size() * 0.7)] * eps_scale;
  auto fast = result.ClustersAt(eps);
  auto slow = BruteDbscanStar(pts, min_pts, eps);
  ExpectSamePartition(fast, slow);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DbscanStarTest,
    ::testing::Combine(::testing::Values(2, 5, 10),
                       ::testing::Values(0.5, 1.0, 2.0)));

// Mutual reachability weights tie frequently (many edges weigh exactly a
// core distance), so the Prim order is not unique. This checker validates
// that (order, value) is *some* correct Prim traversal of the tree: at every
// step the visited vertex attains the minimum frontier weight and the
// reported value equals that weight.
void ExpectValidPrimTraversal(size_t n, const std::vector<WeightedEdge>& mst,
                              const ReachabilityPlot& plot) {
  ASSERT_EQ(plot.order.size(), n);
  std::vector<std::vector<std::pair<uint32_t, double>>> adj(n);
  for (const auto& e : mst) {
    adj[e.u].push_back({e.v, e.w});
    adj[e.v].push_back({e.u, e.w});
  }
  std::vector<double> best(n, std::numeric_limits<double>::infinity());
  std::vector<bool> visited(n, false);
  ASSERT_TRUE(std::isinf(plot.value[0]));
  for (size_t i = 0; i < n; ++i) {
    uint32_t v = plot.order[i];
    ASSERT_FALSE(visited[v]);
    if (i > 0) {
      double frontier_min = std::numeric_limits<double>::infinity();
      for (size_t u = 0; u < n; ++u) {
        if (!visited[u]) frontier_min = std::min(frontier_min, best[u]);
      }
      ASSERT_DOUBLE_EQ(plot.value[i], best[v]) << "step " << i;
      ASSERT_DOUBLE_EQ(best[v], frontier_min) << "step " << i;
    }
    visited[v] = true;
    for (auto [nb, w] : adj[v]) {
      if (!visited[nb]) best[nb] = std::min(best[nb], w);
    }
  }
}

TEST(Hdbscan, FullPipelineReachabilityIsValidPrimTraversal) {
  auto pts = RandomPoints<2>(300, 23);
  constexpr int kMinPts = 5;
  auto result = Hdbscan(pts, kMinPts);
  ReachabilityPlot plot = result.Reachability();
  ExpectValidPrimTraversal(pts.size(), result.mst, plot);
}

TEST(Hdbscan, ClusteredDataReachabilityIsValidPrimTraversal) {
  auto pts = SeedSpreaderVarden<3>(500, 77, 4);
  auto result = Hdbscan(pts, 10);
  ExpectValidPrimTraversal(pts.size(), result.mst, result.Reachability());
}

TEST(Hdbscan, SinglePointPipeline) {
  std::vector<Point<2>> pts{{{0.0, 0.0}}};
  auto result = Hdbscan(pts, 1);
  EXPECT_TRUE(result.mst.empty());
  auto labels = result.ClustersAt(1.0);
  EXPECT_EQ(labels.size(), 1u);
}

}  // namespace
}  // namespace parhc
