// Tests for the spatial substrate: k-d tree invariants, kNN vs brute force,
// BCCP/BCCP* vs brute force, and WSPD realization properties.
#include <gtest/gtest.h>

#include <functional>
#include <map>
#include <random>
#include <set>

#include "spatial/bccp.h"
#include "spatial/kdtree.h"
#include "spatial/knn.h"
#include "spatial/traverse.h"
#include "spatial/wspd.h"
#include "test_util.h"

namespace parhc {
namespace {

using test::DuplicatedPoints;
using test::RandomPoints;

template <int D>
void CheckTreeInvariants(const KdTree<D>& tree, uint32_t node) {
  // Every point of the node lies in its bounding box, and the box is tight.
  Box<D> recomputed = Box<D>::Empty();
  for (uint32_t i = tree.NodeBegin(node); i < tree.NodeEnd(node); ++i) {
    recomputed.Extend(tree.point(i));
  }
  for (int d = 0; d < D; ++d) {
    ASSERT_DOUBLE_EQ(recomputed.lo[d], tree.NodeBox(node).lo[d]);
    ASSERT_DOUBLE_EQ(recomputed.hi[d], tree.NodeBox(node).hi[d]);
  }
  if (!tree.IsLeaf(node)) {
    uint32_t l = tree.Left(node), r = tree.Right(node);
    ASSERT_EQ(tree.NodeBegin(l), tree.NodeBegin(node));
    ASSERT_EQ(tree.NodeEnd(l), tree.NodeBegin(r));
    ASSERT_EQ(tree.NodeEnd(r), tree.NodeEnd(node));
    ASSERT_GT(tree.NodeSize(l), 0u);
    ASSERT_GT(tree.NodeSize(r), 0u);
    CheckTreeInvariants(tree, l);
    CheckTreeInvariants(tree, r);
  }
}

TEST(KdTree, InvariantsRandom2D) {
  auto pts = RandomPoints<2>(3000, 42);
  KdTree<2> tree(pts, 1);
  CheckTreeInvariants(tree, tree.root());
}

TEST(KdTree, InvariantsRandom5D) {
  auto pts = RandomPoints<5>(2000, 1);
  KdTree<5> tree(pts, 8);
  CheckTreeInvariants(tree, tree.root());
}

TEST(KdTree, IdsAreAPermutation) {
  auto pts = RandomPoints<3>(5000, 9);
  KdTree<3> tree(pts, 4);
  std::vector<bool> seen(pts.size(), false);
  for (size_t i = 0; i < pts.size(); ++i) {
    uint32_t id = tree.id(i);
    ASSERT_LT(id, pts.size());
    ASSERT_FALSE(seen[id]);
    seen[id] = true;
    ASSERT_EQ(tree.point(i), pts[id]);  // reordered point matches original
  }
}

TEST(KdTree, ArenaIsSizedToActualNodeCount) {
  // Leaves hold up to 8 points, so the arena must be far below the 2n
  // upper bound, and every parent's index is smaller than its children's
  // (the invariant the flat bottom-up sweeps rely on).
  auto pts = RandomPoints<3>(5000, 3);
  KdTree<3> tree(pts, 8);
  uint32_t count = tree.node_count();
  EXPECT_LT(count, pts.size());  // leaf_size 8 => far fewer than n nodes
  uint32_t leaves = 0;
  for (uint32_t v = 0; v < count; ++v) {
    if (tree.IsLeaf(v)) {
      ++leaves;
    } else {
      ASSERT_GT(tree.Left(v), v);
      ASSERT_EQ(tree.Right(v), tree.Left(v) + 1);
      ASSERT_LT(tree.Right(v), count);
    }
  }
  EXPECT_EQ(count, 2 * leaves - 1);  // full binary tree
}

TEST(KdTree, DuplicatesBecomeZeroDiameterLeaves) {
  auto pts = DuplicatedPoints<2>(500, 7);
  KdTree<2> tree(pts, 1);
  // Every leaf with >1 point must have zero diameter (identical points).
  ForEachLeaf(tree, [&](uint32_t v) {
    if (tree.NodeSize(v) > 1) {
      EXPECT_EQ(tree.Diameter(v), 0.0);
    }
  });
}

TEST(KdTree, SinglePoint) {
  std::vector<Point<2>> pts{{{1.0, 2.0}}};
  KdTree<2> tree(pts, 1);
  EXPECT_TRUE(tree.IsLeaf(tree.root()));
  EXPECT_EQ(tree.NodeSize(tree.root()), 1u);
  EXPECT_EQ(tree.Diameter(tree.root()), 0.0);
  EXPECT_EQ(tree.node_count(), 1u);
}

class KnnTest : public ::testing::TestWithParam<std::tuple<size_t, int>> {};

TEST_P(KnnTest, MatchesBruteForce3D) {
  auto [n, k] = GetParam();
  auto pts = RandomPoints<3>(n, n * 31 + k);
  KdTree<3> tree(pts, 8);
  auto kth = KthNeighborDistances(tree, k);
  std::mt19937_64 rng(n);
  for (int trial = 0; trial < 50; ++trial) {
    size_t i = rng() % n;
    std::vector<double> d(n);
    for (size_t j = 0; j < n; ++j) d[j] = Distance(pts[i], pts[j]);
    std::nth_element(d.begin(), d.begin() + (k - 1), d.end());
    ASSERT_NEAR(kth[i], d[k - 1], 1e-12) << "point " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, KnnTest,
    ::testing::Combine(::testing::Values(50, 500, 2000),
                       ::testing::Values(1, 2, 10, 30)));

TEST(Knn, QueryReturnsSortedNeighbors) {
  auto pts = RandomPoints<2>(1000, 5);
  KdTree<2> tree(pts, 16);
  Point<2> q{{50.0, 50.0}};
  auto nn = KnnQuery(tree, q, 12);
  ASSERT_EQ(nn.size(), 12u);
  for (size_t i = 1; i < nn.size(); ++i) {
    EXPECT_LE(nn[i - 1].first, nn[i].first);
  }
  // First neighbor is the true nearest.
  double best = 1e18;
  for (auto& p : pts) best = std::min(best, Distance(q, p));
  EXPECT_DOUBLE_EQ(nn[0].first, best);
}

TEST(Knn, SelfIsFirstNeighbor) {
  auto pts = RandomPoints<4>(300, 8);
  KdTree<4> tree(pts, 8);
  auto cd1 = KthNeighborDistances(tree, 1);
  for (double d : cd1) EXPECT_EQ(d, 0.0);
}

template <int D>
ClosestPair BruteBccp(const std::vector<Point<D>>& pts,
                      const std::vector<uint32_t>& as,
                      const std::vector<uint32_t>& bs) {
  ClosestPair best;
  for (uint32_t a : as) {
    for (uint32_t b : bs) {
      double d = Distance(pts[a], pts[b]);
      if (d < best.dist) best = {a, b, d};
    }
  }
  return best;
}

template <int D>
std::vector<uint32_t> NodeIds(const KdTree<D>& tree, uint32_t node) {
  std::vector<uint32_t> out;
  for (uint32_t i = tree.NodeBegin(node); i < tree.NodeEnd(node); ++i) {
    out.push_back(tree.id(i));
  }
  return out;
}

TEST(Bccp, MatchesBruteForceOnTreeNodes) {
  auto pts = RandomPoints<3>(2000, 77);
  KdTree<3> tree(pts, 1);
  // Use the root's children as the two sets.
  uint32_t a = tree.Left(tree.root());
  uint32_t b = tree.Right(tree.root());
  ClosestPair expect = BruteBccp(pts, NodeIds(tree, a), NodeIds(tree, b));
  ClosestPair got = Bccp(tree, a, b);
  EXPECT_DOUBLE_EQ(got.dist, expect.dist);
}

TEST(Bccp, DeepNodePairsMatchBruteForce) {
  auto pts = RandomPoints<2>(800, 3);
  KdTree<2> tree(pts, 1);
  ASSERT_FALSE(tree.IsLeaf(tree.root()));
  ASSERT_FALSE(tree.IsLeaf(tree.Left(tree.root())));
  ASSERT_FALSE(tree.IsLeaf(tree.Right(tree.root())));
  uint32_t a = tree.Left(tree.Left(tree.root()));
  uint32_t b = tree.Right(tree.Right(tree.root()));
  EXPECT_DOUBLE_EQ(Bccp(tree, a, b).dist,
                   BruteBccp(pts, NodeIds(tree, a), NodeIds(tree, b)).dist);
}

TEST(BccpStar, MatchesBruteForceMutualReachability) {
  auto pts = RandomPoints<2>(600, 13);
  constexpr int kMinPts = 5;
  KdTree<2> tree(pts, 1);
  auto cd = test::BruteCoreDistances(pts, kMinPts);
  tree.AnnotateCoreDistances(cd);
  uint32_t a = tree.Left(tree.root());
  uint32_t b = tree.Right(tree.root());
  double expect = std::numeric_limits<double>::infinity();
  for (uint32_t i = tree.NodeBegin(a); i < tree.NodeEnd(a); ++i) {
    for (uint32_t j = tree.NodeBegin(b); j < tree.NodeEnd(b); ++j) {
      uint32_t u = tree.id(i), v = tree.id(j);
      expect = std::min(
          expect, std::max({Distance(pts[u], pts[v]), cd[u], cd[v]}));
    }
  }
  EXPECT_DOUBLE_EQ(BccpStar(tree, a, b).dist, expect);
}

// WSPD realization properties (Section 2.3): every unordered point pair is
// covered by exactly one well-separated pair, and recorded pairs satisfy
// the separation criterion.
class WspdTest : public ::testing::TestWithParam<size_t> {};

TEST_P(WspdTest, RealizationCoversEveryPairExactlyOnce) {
  size_t n = GetParam();
  auto pts = RandomPoints<2>(n, n);
  KdTree<2> tree(pts, 1);
  auto pairs = MaterializeWspd(tree, GeometricSeparation<2>{2.0});
  std::map<std::pair<uint32_t, uint32_t>, int> cover;
  for (auto& pr : pairs) {
    for (uint32_t i = tree.NodeBegin(pr.a); i < tree.NodeEnd(pr.a); ++i) {
      for (uint32_t j = tree.NodeBegin(pr.b); j < tree.NodeEnd(pr.b); ++j) {
        uint32_t u = tree.id(i), v = tree.id(j);
        cover[{std::min(u, v), std::max(u, v)}]++;
      }
    }
  }
  size_t expected_pairs = n * (n - 1) / 2;
  ASSERT_EQ(cover.size(), expected_pairs);
  for (auto& [k, c] : cover) {
    ASSERT_EQ(c, 1) << "pair covered " << c << " times";
  }
}

TEST_P(WspdTest, PairsAreWellSeparated) {
  size_t n = GetParam();
  auto pts = RandomPoints<3>(n, n + 5);
  KdTree<3> tree(pts, 1);
  GeometricSeparation<3> sep{2.0};
  auto pairs = MaterializeWspd(tree, sep);
  for (auto& pr : pairs) {
    EXPECT_TRUE(sep(tree, pr.a, pr.b));
  }
}

TEST_P(WspdTest, LinearNumberOfPairs) {
  size_t n = GetParam();
  auto pts = RandomPoints<2>(n, 2 * n + 1);
  KdTree<2> tree(pts, 1);
  auto pairs = MaterializeWspd(tree, GeometricSeparation<2>{2.0});
  // Theory: O(s^d * n) pairs. Generous constant for s=2, d=2.
  EXPECT_LT(pairs.size(), 120 * n);
}

INSTANTIATE_TEST_SUITE_P(Sizes, WspdTest, ::testing::Values(2, 3, 17, 128, 500));

TEST(Wspd, HdbscanSeparationYieldsFewerPairs) {
  // Section 3.2.2: the new definition terminates recursion earlier, so the
  // number of pairs cannot exceed (and is typically far below) the
  // geometric-separation count.
  auto pts = test::RandomPoints<3>(4000, 99);
  KdTree<3> tree(pts, 1);
  auto cd = [&] {
    KdTree<3> tmp(pts, 8);
    return KthNeighborDistances(tmp, 10);
  }();
  tree.AnnotateCoreDistances(cd);
  auto geo_pairs = MaterializeWspd(tree, GeometricSeparation<3>{2.0});
  auto new_pairs = MaterializeWspd(tree, HdbscanSeparation<3>{});
  EXPECT_LT(new_pairs.size(), geo_pairs.size());
}

TEST(Wspd, CoverageWithDuplicatesViaLeafEdges) {
  // With duplicates, intra-leaf pairs are not covered by the WSPD — that is
  // the documented contract; EMST/HDBSCAN add explicit leaf edges.
  auto pts = DuplicatedPoints<2>(200, 21);
  KdTree<2> tree(pts, 1);
  auto pairs = MaterializeWspd(tree, GeometricSeparation<2>{2.0});
  std::set<std::pair<uint32_t, uint32_t>> covered;
  for (auto& pr : pairs) {
    for (uint32_t i = tree.NodeBegin(pr.a); i < tree.NodeEnd(pr.a); ++i) {
      for (uint32_t j = tree.NodeBegin(pr.b); j < tree.NodeEnd(pr.b); ++j) {
        uint32_t u = tree.id(i), v = tree.id(j);
        auto key = std::minmax(u, v);
        ASSERT_TRUE(covered.insert({key.first, key.second}).second)
            << "double cover";
      }
    }
  }
  // All uncovered pairs must be identical-point pairs.
  for (uint32_t u = 0; u < pts.size(); ++u) {
    for (uint32_t v = u + 1; v < pts.size(); ++v) {
      if (!covered.count({u, v})) {
        ASSERT_EQ(pts[u], pts[v]) << "non-duplicate pair uncovered";
      }
    }
  }
}

}  // namespace
}  // namespace parhc
