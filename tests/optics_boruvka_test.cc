// Approximate OPTICS (Appendix C) and the kd-tree Boruvka EMST baseline.
#include <gtest/gtest.h>

#include "emst/emst_boruvka.h"
#include "emst/emst_memogfk.h"
#include "hdbscan/hdbscan_mst.h"
#include "hdbscan/optics_approx.h"
#include "test_util.h"

namespace parhc {
namespace {

using test::DuplicatedPoints;
using test::RandomPoints;
using test::TotalWeight;

class BoruvkaTest : public ::testing::TestWithParam<std::tuple<size_t, int>> {};

TEST_P(BoruvkaTest, MatchesPrim2D) {
  auto [n, seed] = GetParam();
  auto pts = RandomPoints<2>(n, n * 3 + seed);
  double expect = test::PrimEmstWeight(pts);
  auto mst = EmstBoruvka(pts);
  ASSERT_EQ(mst.size(), n - 1);
  EXPECT_NEAR(TotalWeight(mst), expect, 1e-7 * (1 + expect));
}

TEST_P(BoruvkaTest, MatchesPrim5D) {
  auto [n, seed] = GetParam();
  auto pts = RandomPoints<5>(n, n * 5 + seed);
  double expect = test::PrimEmstWeight(pts);
  EXPECT_NEAR(TotalWeight(EmstBoruvka(pts)), expect, 1e-7 * (1 + expect));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BoruvkaTest,
    ::testing::Combine(::testing::Values(2, 5, 40, 300),
                       ::testing::Values(1, 2)));

TEST(Boruvka, AgreesWithMemoGfkOnLargerInput) {
  auto pts = UniformFill<3>(4000, 3);
  double wm = TotalWeight(EmstMemoGfk(pts));
  double wb = TotalWeight(EmstBoruvka(pts));
  EXPECT_NEAR(wb, wm, 1e-9 * wm);
}

TEST(Boruvka, DuplicatePoints) {
  auto pts = DuplicatedPoints<2>(200, 9);
  double expect = test::PrimEmstWeight(pts);
  EXPECT_NEAR(TotalWeight(EmstBoruvka(pts)), expect, 1e-9 * (1 + expect));
}

TEST(Boruvka, SkewedData) {
  auto pts = SkewedLevy<3>(500, 2);
  double expect = test::PrimEmstWeight(pts);
  EXPECT_NEAR(TotalWeight(EmstBoruvka(pts)), expect, 1e-7 * (1 + expect));
}

// ---------------------------------------------------------------------------
// Approximate OPTICS.

class OpticsApproxTest
    : public ::testing::TestWithParam<std::tuple<size_t, double>> {};

TEST_P(OpticsApproxTest, ApproximationBound) {
  auto [n, rho] = GetParam();
  constexpr int kMinPts = 5;
  auto pts = RandomPoints<2>(n, n + 3);
  auto approx = OpticsApproxMst(pts, kMinPts, rho);
  ASSERT_EQ(approx.mst.size(), n - 1);
  double exact = test::PrimMutualReachabilityWeight(pts, kMinPts);
  // Every approximate edge weight is within a (1+rho) factor below the true
  // mutual reachability (d is divided by 1+rho), so the approximate MST
  // weight lies in [exact / (1+rho), exact] ... scaled back up it bounds
  // the exact weight. Check the total against both sides.
  double approx_w = TotalWeight(approx.mst);
  EXPECT_LE(approx_w, exact * (1 + 1e-9));
  EXPECT_GE(approx_w * (1 + rho), exact * (1 - 1e-9));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, OpticsApproxTest,
    ::testing::Combine(::testing::Values(50, 200, 600),
                       ::testing::Values(0.125, 0.5, 2.0)));

TEST(OpticsApprox, SmallRhoApproachesExact) {
  auto pts = RandomPoints<2>(300, 9);
  constexpr int kMinPts = 10;
  double exact = test::PrimMutualReachabilityWeight(pts, kMinPts);
  auto approx = OpticsApproxMst(pts, kMinPts, /*rho=*/0.01);
  EXPECT_NEAR(TotalWeight(approx.mst), exact, 0.02 * exact);
}

TEST(OpticsApprox, HigherSeparationMeansMoreEdgesThanExactPairs) {
  // Appendix C's experimental finding: a useful rho needs a large
  // separation constant, producing far more base-graph edges than the
  // exact method materializes pairs.
  auto pts = SeedSpreaderVarden<2>(2000, 5, 4);
  StatsEpoch epoch;
  HdbscanMst(pts, 10, HdbscanVariant::kMemoGfk);
  uint64_t exact_pairs = epoch.Delta().wspd_pairs_materialized;
  auto approx = OpticsApproxMst(pts, 10, 0.125);
  EXPECT_GT(approx.base_graph_edges, exact_pairs);
}

TEST(OpticsApprox, MinPtsOneRhoTinyMatchesEmst) {
  auto pts = RandomPoints<2>(200, 13);
  auto approx = OpticsApproxMst(pts, 1, 1e-6);
  double emst = TotalWeight(EmstMemoGfk(pts));
  EXPECT_NEAR(TotalWeight(approx.mst), emst, 1e-4 * emst);
}

TEST(OpticsApprox, DuplicatePoints) {
  auto pts = DuplicatedPoints<2>(150, 3);
  auto approx = OpticsApproxMst(pts, 3, 0.125);
  ASSERT_EQ(approx.mst.size(), pts.size() - 1);
}

}  // namespace
}  // namespace parhc
