// Quickstart: compute an EMST and an HDBSCAN* clustering in ~30 lines.
//
//   ./examples/quickstart [n]
#include <cstdio>
#include <cstdlib>

#include "parhc.h"

int main(int argc, char** argv) {
  using namespace parhc;
  size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 10000;

  // 1. Make some 2-D data: three dense clusters plus background noise.
  std::vector<Point<2>> pts = SeedSpreaderVarden<2>(n, /*seed=*/42,
                                                    /*clusters=*/3);

  // 2. Euclidean minimum spanning tree (MemoGFK — the paper's fastest).
  std::vector<WeightedEdge> mst = Emst(pts);
  double total = 0;
  for (const auto& e : mst) total += e.w;
  std::printf("EMST: %zu edges, total weight %.3f\n", mst.size(), total);

  // 3. HDBSCAN* hierarchy: mutual-reachability MST + ordered dendrogram.
  HdbscanResult h = Hdbscan(pts, /*min_pts=*/10);
  std::printf("HDBSCAN* dendrogram root height: %.3f\n",
              h.dendrogram.Height(h.dendrogram.root()));

  // 4. Flat DBSCAN* clusters at a density threshold.
  double eps = 120.0;
  std::vector<int32_t> labels = h.ClustersAt(eps);
  int32_t k = 0;
  size_t noise = 0;
  for (int32_t l : labels) {
    if (l == kNoise) {
      ++noise;
    } else {
      k = std::max(k, l + 1);
    }
  }
  std::printf("DBSCAN* at eps=%.1f: %d clusters, %zu noise points\n", eps, k,
              noise);

  // 5. The reachability plot (OPTICS sequence): valleys are clusters.
  ReachabilityPlot plot = h.Reachability();
  std::printf("first 5 reachability bars:");
  for (size_t i = 1; i < 6 && i < plot.value.size(); ++i) {
    std::printf(" %.2f", plot.value[i]);
  }
  std::printf("\n");
  return 0;
}
