// parhc_cli — command-line driver for the library: generate datasets and
// run any of the algorithms on CSV point files, writing CSV results. This
// is the "downstream user" entry point; it exercises the whole public API.
//
// Usage:
//   parhc_cli generate <uniform|varden|levy|gauss> <dim> <n> <out.csv> [seed]
//   parhc_cli emst     <naive|gfk|memogfk|boruvka|delaunay> <dim> <in.csv> <out-edges.csv>
//   parhc_cli hdbscan  <memogfk|gantao> <dim> <minPts> <in.csv> <out-labels.csv> [min_cluster_size]
//   parhc_cli slink    <dim> <k> <in.csv> <out-labels.csv>
//   parhc_cli reach    <dim> <minPts> <in.csv> <out-reachability.csv>
//
// Supported dims: 2, 3, 5, 7, 10, 16.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "hdbscan/stability.h"
#include "parhc.h"
#include "util/timer.h"

namespace {

using namespace parhc;

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  parhc_cli generate <uniform|varden|levy|gauss> <dim> <n> "
               "<out.csv> [seed]\n"
               "  parhc_cli emst <naive|gfk|memogfk|boruvka|delaunay> <dim> "
               "<in.csv> <out-edges.csv>\n"
               "  parhc_cli hdbscan <memogfk|gantao> <dim> <minPts> <in.csv> "
               "<out-labels.csv> [min_cluster_size]\n"
               "  parhc_cli slink <dim> <k> <in.csv> <out-labels.csv>\n"
               "  parhc_cli reach <dim> <minPts> <in.csv> "
               "<out-reachability.csv>\n");
  return 2;
}

void WriteEdgesCsv(const std::string& path,
                   const std::vector<WeightedEdge>& edges) {
  std::ofstream out(path);
  out.precision(17);
  out << "# u,v,weight\n";
  for (const auto& e : edges) out << e.u << ',' << e.v << ',' << e.w << '\n';
}

void WriteLabelsCsv(const std::string& path,
                    const std::vector<int32_t>& labels) {
  std::ofstream out(path);
  out << "# point_id,cluster (-1 = noise)\n";
  for (size_t i = 0; i < labels.size(); ++i) {
    out << i << ',' << labels[i] << '\n';
  }
}

template <int D>
int RunGenerate(const std::string& kind, size_t n, const std::string& out,
                uint64_t seed) {
  std::vector<Point<D>> pts;
  if (kind == "uniform") {
    pts = UniformFill<D>(n, seed);
  } else if (kind == "varden") {
    pts = SeedSpreaderVarden<D>(n, seed);
  } else if (kind == "levy") {
    pts = SkewedLevy<D>(n, seed);
  } else if (kind == "gauss") {
    pts = ClusteredGaussians<D>(n, seed);
  } else {
    return Usage();
  }
  WritePointsCsv(out, pts);
  std::printf("wrote %zu %dD points to %s\n", pts.size(), D, out.c_str());
  return 0;
}

template <int D>
int RunEmstCmd(const std::string& method, const std::string& in,
               const std::string& out) {
  auto pts = ReadPointsCsvAs<D>(in);
  Timer t;
  std::vector<WeightedEdge> mst;
  if (method == "delaunay") {
    if constexpr (D == 2) {
      mst = EmstDelaunay(pts);
    } else {
      std::fprintf(stderr, "delaunay requires dim 2\n");
      return 2;
    }
  } else {
    EmstAlgorithm algo = EmstAlgorithm::kMemoGfk;
    if (method == "naive") algo = EmstAlgorithm::kNaive;
    else if (method == "gfk") algo = EmstAlgorithm::kGfk;
    else if (method == "boruvka") algo = EmstAlgorithm::kBoruvka;
    else if (method != "memogfk") return Usage();
    mst = Emst(pts, algo);
  }
  double w = 0;
  for (auto& e : mst) w += e.w;
  std::printf("emst(%s): n=%zu, %zu edges, weight %.6e, %.3fs\n",
              method.c_str(), pts.size(), mst.size(), w, t.Seconds());
  WriteEdgesCsv(out, mst);
  return 0;
}

template <int D>
int RunHdbscanCmd(const std::string& variant, int min_pts,
                  const std::string& in, const std::string& out,
                  size_t min_cluster_size) {
  auto pts = ReadPointsCsvAs<D>(in);
  Timer t;
  HdbscanResult h = Hdbscan(pts, min_pts,
                            variant == "gantao" ? HdbscanVariant::kGanTao
                                                : HdbscanVariant::kMemoGfk);
  StabilityClusters sc = ExtractStableClusters(h.dendrogram,
                                               min_cluster_size);
  std::printf("hdbscan(%s, minPts=%d): n=%zu, %zu stable clusters, %.3fs\n",
              variant.c_str(), min_pts, pts.size(), sc.stability.size(),
              t.Seconds());
  WriteLabelsCsv(out, sc.label);
  return 0;
}

template <int D>
int RunSlinkCmd(size_t k, const std::string& in, const std::string& out) {
  auto pts = ReadPointsCsvAs<D>(in);
  SingleLinkageResult sl = SingleLinkage(pts);
  WriteLabelsCsv(out, sl.Clusters(k));
  std::printf("single-linkage: n=%zu, k=%zu\n", pts.size(), k);
  return 0;
}

template <int D>
int RunReachCmd(int min_pts, const std::string& in, const std::string& out) {
  auto pts = ReadPointsCsvAs<D>(in);
  HdbscanResult h = Hdbscan(pts, min_pts);
  ReachabilityPlot plot = h.Reachability();
  std::ofstream os(out);
  os.precision(17);
  os << "# position,point_id,reachability\n";
  for (size_t i = 0; i < plot.order.size(); ++i) {
    os << i << ',' << plot.order[i] << ',' << plot.value[i] << '\n';
  }
  std::printf("reachability plot: n=%zu points\n", pts.size());
  return 0;
}

template <typename Fn>
int DispatchDim(int dim, Fn&& fn) {
  switch (dim) {
    case 2: return fn(std::integral_constant<int, 2>{});
    case 3: return fn(std::integral_constant<int, 3>{});
    case 5: return fn(std::integral_constant<int, 5>{});
    case 7: return fn(std::integral_constant<int, 7>{});
    case 10: return fn(std::integral_constant<int, 10>{});
    case 16: return fn(std::integral_constant<int, 16>{});
    default:
      std::fprintf(stderr, "unsupported dim %d (use 2,3,5,7,10,16)\n", dim);
      return 2;
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  std::string cmd = argv[1];
  if (cmd == "generate" && (argc == 6 || argc == 7)) {
    std::string kind = argv[2];
    int dim = std::atoi(argv[3]);
    size_t n = std::strtoull(argv[4], nullptr, 10);
    uint64_t seed = argc == 7 ? std::strtoull(argv[6], nullptr, 10) : 1;
    return DispatchDim(dim, [&](auto d) {
      return RunGenerate<decltype(d)::value>(kind, n, argv[5], seed);
    });
  }
  if (cmd == "emst" && argc == 6) {
    int dim = std::atoi(argv[3]);
    return DispatchDim(dim, [&](auto d) {
      return RunEmstCmd<decltype(d)::value>(argv[2], argv[4], argv[5]);
    });
  }
  if (cmd == "hdbscan" && (argc == 7 || argc == 8)) {
    int dim = std::atoi(argv[3]);
    int min_pts = std::atoi(argv[4]);
    size_t mcs = argc == 8 ? std::strtoull(argv[7], nullptr, 10) : 5;
    return DispatchDim(dim, [&](auto d) {
      return RunHdbscanCmd<decltype(d)::value>(argv[2], min_pts, argv[5],
                                               argv[6], mcs);
    });
  }
  if (cmd == "slink" && argc == 6) {
    int dim = std::atoi(argv[2]);
    size_t k = std::strtoull(argv[3], nullptr, 10);
    return DispatchDim(dim, [&](auto d) {
      return RunSlinkCmd<decltype(d)::value>(k, argv[4], argv[5]);
    });
  }
  if (cmd == "reach" && argc == 6) {
    int dim = std::atoi(argv[2]);
    int min_pts = std::atoi(argv[3]);
    return DispatchDim(dim, [&](auto d) {
      return RunReachCmd<decltype(d)::value>(min_pts, argv[4], argv[5]);
    });
  }
  return Usage();
}
