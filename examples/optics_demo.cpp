// Approximate OPTICS (Appendix C) versus the exact HDBSCAN* methods.
//
// Reproduces the paper's observation that a useful approximation parameter
// rho forces a large WSPD separation constant (s = sqrt(8/rho)), making the
// approximate algorithm generate far more base-graph edges than the exact
// method materializes pairs — so the exact algorithm wins in practice.
//
//   ./examples/optics_demo [n] [minPts]
#include <cstdio>
#include <cstdlib>

#include "parhc.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace parhc;
  size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 20000;
  int min_pts = argc > 2 ? std::atoi(argv[2]) : 10;

  std::vector<Point<2>> pts = UniformFill<2>(n, /*seed=*/5);
  std::printf("== OPTICS on %zu uniform 2-D points, minPts=%d\n", n, min_pts);

  Timer t;
  auto exact = HdbscanMst(pts, min_pts, HdbscanVariant::kMemoGfk);
  double t_exact = t.Seconds();
  double w_exact = 0;
  for (auto& e : exact.mst) w_exact += e.w;
  std::printf("exact HDBSCAN*-MemoGFK : %7.3fs  MST weight %.4e\n", t_exact,
              w_exact);

  for (double rho : {2.0, 0.5, 0.125}) {
    t.Reset();
    OpticsApproxResult a = OpticsApproxMst(pts, min_pts, rho);
    double secs = t.Seconds();
    double w = 0;
    for (auto& e : a.mst) w += e.w;
    std::printf(
        "approx OPTICS rho=%.3f : %7.3fs  MST weight %.4e "
        "(ratio %.4f, base edges %llu, s=%.1f)\n",
        rho, secs, w, w / w_exact,
        static_cast<unsigned long long>(a.base_graph_edges),
        std::sqrt(8.0 / rho));
  }

  // The approximate reachability plot still shows the same cluster valleys.
  auto approx = OpticsApproxMst(pts, min_pts, 0.125);
  Dendrogram d = BuildDendrogramParallel(n, approx.mst, 0);
  ReachabilityPlot plot = ComputeReachability(d);
  double mean = 0;
  for (size_t i = 1; i < plot.value.size(); ++i) mean += plot.value[i];
  std::printf("approx reachability mean bar: %.4f\n",
              mean / (plot.value.size() - 1));
  return 0;
}
