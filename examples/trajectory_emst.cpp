// EMST on skewed trajectory data — the GeoLife-style workload from the
// paper's evaluation (GPS traces are extremely skewed, which stresses the
// spatial decomposition). Compares all four EMST algorithms and verifies
// they agree.
//
//   ./examples/trajectory_emst [n]
#include <cstdio>
#include <cstdlib>

#include "parhc.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace parhc;
  size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 50000;

  // Levy-flight trajectory: long excursions + dense dwell regions.
  std::vector<Point<3>> pts = SkewedLevy<3>(n, /*seed=*/2021);
  std::printf("== EMST on %zu skewed trajectory points (3-D)\n", n);

  struct Method {
    const char* name;
    EmstAlgorithm algo;
  } methods[] = {
      {"EMST-Naive", EmstAlgorithm::kNaive},
      {"EMST-GFK", EmstAlgorithm::kGfk},
      {"EMST-MemoGFK", EmstAlgorithm::kMemoGfk},
      {"EMST-Boruvka", EmstAlgorithm::kBoruvka},
  };
  double first_weight = -1;
  for (const Method& m : methods) {
    StatsEpoch epoch(StatsEpoch::kResetPeak);
    Timer t;
    std::vector<WeightedEdge> mst = Emst(pts, m.algo);
    double secs = t.Seconds();
    double w = 0;
    for (const auto& e : mst) w += e.w;
    if (first_weight < 0) first_weight = w;
    std::printf("%-14s %8.3fs  weight %.4e  pairs materialized %8llu  %s\n",
                m.name, secs, w,
                static_cast<unsigned long long>(
                    epoch.Delta().wspd_pairs_materialized),
                std::abs(w - first_weight) < 1e-6 * first_weight
                    ? "(agrees)"
                    : "(MISMATCH!)");
  }

  // Single-linkage clustering of the trajectory's dwell regions.
  SingleLinkageResult sl = SingleLinkage(pts);
  std::vector<int32_t> labels = sl.Clusters(8);
  std::vector<size_t> sizes(8, 0);
  for (int32_t l : labels) sizes[l]++;
  std::printf("single-linkage, k=8 cluster sizes:");
  for (size_t s : sizes) std::printf(" %zu", s);
  std::printf("\n");
  return 0;
}
