// Density-based cluster exploration on variable-density data — the workload
// HDBSCAN* was designed for (clusters of different densities defeat any
// single-eps DBSCAN).
//
// Generates SS-varden data, builds the hierarchy once, then extracts flat
// DBSCAN* clusterings at several eps values and renders an ASCII
// reachability plot whose valleys are the clusters.
//
//   ./examples/hdbscan_clustering [n] [minPts]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>

#include "parhc.h"

int main(int argc, char** argv) {
  using namespace parhc;
  size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 20000;
  int min_pts = argc > 2 ? std::atoi(argv[2]) : 10;

  std::vector<Point<3>> pts = SeedSpreaderVarden<3>(n, /*seed=*/7,
                                                    /*clusters=*/6);
  std::printf("== HDBSCAN* on %zu variable-density 3-D points, minPts=%d\n",
              n, min_pts);

  PhaseBreakdown phases;
  HdbscanResult h = Hdbscan(pts, min_pts, HdbscanVariant::kMemoGfk, &phases);
  std::printf("build-tree %.3fs  core-dist %.3fs  wspd %.3fs  kruskal %.3fs"
              "  dendrogram %.3fs\n",
              phases.build_tree, phases.core_dist, phases.wspd,
              phases.kruskal, phases.dendrogram);

  // One hierarchy, many flat clusterings: sweep eps without re-clustering.
  for (double eps : {40.0, 80.0, 160.0, 320.0}) {
    std::vector<int32_t> labels = h.ClustersAt(eps);
    std::map<int32_t, size_t> sizes;
    size_t noise = 0;
    for (int32_t l : labels) {
      if (l == kNoise) {
        ++noise;
      } else {
        sizes[l]++;
      }
    }
    // Count only non-trivial clusters for display.
    size_t big = 0;
    for (auto& [l, s] : sizes) {
      if (s >= 20) ++big;
    }
    std::printf("eps %6.1f: %4zu clusters (%zu with >=20 pts), %6zu noise\n",
                eps, sizes.size(), big, noise);
  }

  // ASCII reachability plot, downsampled to 100 columns.
  ReachabilityPlot plot = h.Reachability();
  constexpr int kCols = 100, kRows = 12;
  size_t stride = std::max<size_t>(1, plot.value.size() / kCols);
  std::vector<double> bars;
  for (size_t i = 1; i < plot.value.size(); i += stride) {
    double m = 0;
    for (size_t j = i; j < std::min(plot.value.size(), i + stride); ++j) {
      m = std::max(m, plot.value[j]);
    }
    bars.push_back(m);
  }
  double hi = *std::max_element(bars.begin(), bars.end());
  std::printf("\nreachability plot (valleys = clusters), max=%.1f:\n", hi);
  for (int r = kRows; r >= 1; --r) {
    for (double b : bars) {
      std::putchar(b / hi >= static_cast<double>(r) / kRows ? '#' : ' ');
    }
    std::putchar('\n');
  }
  return 0;
}
