// parhc_netserver: the TCP front-end over the ClusteringEngine.
//
// Serves the same protocol as the stdin REPL (parhc_server) to many
// concurrent clients: non-blocking epoll (or poll) event loop, bounded
// fair query scheduler, per-connection response ordering, `err busy`
// load-shed, idle timeouts, and graceful drain on SIGINT/SIGTERM. See
// src/net/server.h for the architecture and README "Network serving" for
// the wire protocol.
//
// Usage: parhc_netserver [options]
//   --port N        listen port (default 7077; 0 = ephemeral)
//   --bind ADDR     bind address (default 127.0.0.1)
//   --workers N     query worker threads (default 4)
//   --parallel N    fork-join scheduler pool size (default: all hardware
//                   threads, or the PARHC_WORKERS environment variable)
//   --queue N       global queued-request bound before load-shed (1024)
//   --pipeline N    per-connection pipelining bound (128)
//   --idle-ms N     idle connection timeout, <=0 disables (300000)
//   --poll          force the poll(2) backend instead of epoll
//   --no-timing     omit the secs= field from query responses
//   --slow-us N     slow-query log threshold in microseconds (10000)
//   --trace         enable request tracing at startup (`trace on` wire
//                   verb does the same at runtime)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "net/server.h"
#include "parhc.h"

int main(int argc, char** argv) {
  using namespace parhc;
  net::NetServerOptions opts;
  opts.port = 7077;
  opts.install_signal_handlers = true;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--port") {
      opts.port = static_cast<uint16_t>(std::atoi(next("--port")));
    } else if (arg == "--bind") {
      opts.bind_addr = next("--bind");
    } else if (arg == "--workers") {
      opts.workers = std::atoi(next("--workers"));
    } else if (arg == "--parallel") {
      int w = std::atoi(next("--parallel"));
      if (w >= 1) SetNumWorkers(w);
    } else if (arg == "--queue") {
      opts.max_queued = static_cast<size_t>(std::atoll(next("--queue")));
    } else if (arg == "--pipeline") {
      opts.max_pipelined =
          static_cast<size_t>(std::atoll(next("--pipeline")));
    } else if (arg == "--idle-ms") {
      opts.idle_timeout_ms = std::atoi(next("--idle-ms"));
    } else if (arg == "--poll") {
      opts.use_poll = true;
    } else if (arg == "--no-timing") {
      opts.show_timing = false;
    } else if (arg == "--slow-us") {
      opts.slow_query_us =
          static_cast<uint64_t>(std::atoll(next("--slow-us")));
    } else if (arg == "--trace") {
      opts.trace = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return 2;
    }
  }

  ClusteringEngine engine;
  net::NetServer server(engine, opts);
  std::string err = server.Start();
  if (!err.empty()) {
    std::fprintf(stderr, "parhc_netserver: %s\n", err.c_str());
    return 1;
  }
  std::printf(
      "parhc_netserver listening on %s:%u workers=%d parallel=%d\n",
      opts.bind_addr.c_str(), server.port(), opts.workers, NumWorkers());
  std::fflush(stdout);
  server.Run();  // returns after SIGINT/SIGTERM graceful drain
  std::printf("parhc_netserver drained, bye\n");
  return 0;
}
