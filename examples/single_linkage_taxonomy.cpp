// Single-linkage taxonomy construction on high-dimensional feature vectors —
// the gene-expression-style use case the paper cites for EMST-based
// clustering [62, 64]. Builds the EMST-backed dendrogram for 16-D feature
// data, cuts it at several granularities, and prints the taxonomy skeleton.
//
//   ./examples/single_linkage_taxonomy [n]
#include <cstdio>
#include <cstdlib>
#include <map>

#include "parhc.h"

int main(int argc, char** argv) {
  using namespace parhc;
  size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 5000;

  // 16-D blobs, like normalized expression profiles for ~n genes.
  std::vector<Point<16>> pts = ClusteredGaussians<16>(n, /*seed=*/11,
                                                      /*blobs=*/12);
  std::printf("== single-linkage taxonomy over %zu 16-D profiles\n", n);

  SingleLinkageResult sl = SingleLinkage(pts);

  // Dendrogram root path: the heights of the last merges show how separated
  // the top-level families are.
  const Dendrogram& d = sl.dendrogram;
  std::printf("top merge heights:");
  uint32_t cur = d.root();
  for (int i = 0; i < 6 && !d.IsLeaf(cur); ++i) {
    std::printf(" %.2f", d.Height(cur));
    uint32_t l = d.Left(cur), r = d.Right(cur);
    cur = (!d.IsLeaf(l) && (d.IsLeaf(r) || d.Height(l) >= d.Height(r))) ? l
                                                                        : r;
  }
  std::printf("\n");

  for (size_t k : {4, 8, 16}) {
    std::vector<int32_t> labels = sl.Clusters(k);
    std::map<int32_t, size_t> sizes;
    for (int32_t l : labels) sizes[l]++;
    std::printf("k=%2zu family sizes:", k);
    for (auto& [l, s] : sizes) std::printf(" %zu", s);
    std::printf("\n");
  }

  // Nesting check: refining k never splits across coarser families.
  auto l4 = sl.Clusters(4);
  auto l16 = sl.Clusters(16);
  std::map<int32_t, int32_t> fine_to_coarse;
  bool nested = true;
  for (size_t i = 0; i < n; ++i) {
    auto [it, inserted] = fine_to_coarse.try_emplace(l16[i], l4[i]);
    if (!inserted && it->second != l4[i]) nested = false;
  }
  std::printf("hierarchy is nested: %s\n", nested ? "yes" : "NO (bug!)");
  return 0;
}
