// parhc_server: a line-protocol front-end over the ClusteringEngine.
//
// Reads one command per line from stdin and answers on stdout, so it works
// both as an interactive REPL and in batch mode (pipe a script in; used by
// the CI examples smoke step). Blank lines and '#' comments are ignored.
//
// Commands:
//   gen <name> <dim> <uniform|varden|levy|gauss> <n> [seed]
//   load <name> <csv|bin> <path>
//   load <name> snap <dir>           warm-start from a snapshot directory
//   save <name> <dir>                snapshot every cached artifact to disk
//   dyn <name> <dim>                  create an empty batch-dynamic dataset
//   insert <name> <coords...>        insert points (dim values per point)
//   geninsert <name> <dim> <kind> <n> [seed]   generate + insert a batch
//   delete <name> <gid> [gid ...]    tombstone points by global id
//   list
//   drop <name>
//   emst <name>
//   slink <name> <k>
//   hdbscan <name> <minPts>
//   dbscan <name> <minPts> <eps>
//   reach <name> <minPts>
//   clusters <name> <minPts> <minClusterSize>
//   help
//   quit
//
// Every query line answers with a single "ok ..." or "err ..." line
// containing the result summary plus the built/reused artifact trace, e.g.
//   ok hdbscan d mst_edges=9999 mst_weight=123.456 built=[mst@10,dendro@10]
//      reused=[tree,knn@50,cd@10] secs=0.42
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "parhc.h"

namespace {

using namespace parhc;

std::string JoinKeys(const std::vector<std::string>& keys) {
  std::string out = "[";
  for (size_t i = 0; i < keys.size(); ++i) {
    if (i) out += ',';
    out += keys[i];
  }
  return out + "]";
}

template <int D>
std::vector<Point<D>> GenTyped(const std::string& kind, size_t n,
                               uint64_t seed) {
  if (kind == "uniform") return UniformFill<D>(n, seed);
  if (kind == "varden") return SeedSpreaderVarden<D>(n, seed);
  if (kind == "levy") return SkewedLevy<D>(n, seed);
  if (kind == "gauss") return ClusteredGaussians<D>(n, seed);
  return {};
}

template <int D>
std::vector<std::vector<double>> RowsFrom(const std::vector<Point<D>>& pts) {
  std::vector<std::vector<double>> rows(pts.size(), std::vector<double>(D));
  for (size_t i = 0; i < pts.size(); ++i) {
    for (int d = 0; d < D; ++d) rows[i][d] = pts[i][d];
  }
  return rows;
}

/// Generated points as runtime rows, for the batch-dynamic insert path.
/// Empty when the kind is unknown.
std::vector<std::vector<double>> GenRows(int dim, const std::string& kind,
                                         size_t n, uint64_t seed) {
  switch (dim) {
    case 2: return RowsFrom(GenTyped<2>(kind, n, seed));
    case 3: return RowsFrom(GenTyped<3>(kind, n, seed));
    case 4: return RowsFrom(GenTyped<4>(kind, n, seed));
    case 5: return RowsFrom(GenTyped<5>(kind, n, seed));
    case 7: return RowsFrom(GenTyped<7>(kind, n, seed));
    case 10: return RowsFrom(GenTyped<10>(kind, n, seed));
    case 16: return RowsFrom(GenTyped<16>(kind, n, seed));
    default: return {};
  }
}

bool Generate(DatasetRegistry& reg, const std::string& name, int dim,
              const std::string& kind, size_t n, uint64_t seed) {
  if (kind != "uniform" && kind != "varden" && kind != "levy" &&
      kind != "gauss") {
    return false;
  }
  switch (dim) {
    case 2: reg.Add(name, GenTyped<2>(kind, n, seed)); return true;
    case 3: reg.Add(name, GenTyped<3>(kind, n, seed)); return true;
    case 4: reg.Add(name, GenTyped<4>(kind, n, seed)); return true;
    case 5: reg.Add(name, GenTyped<5>(kind, n, seed)); return true;
    case 7: reg.Add(name, GenTyped<7>(kind, n, seed)); return true;
    case 10: reg.Add(name, GenTyped<10>(kind, n, seed)); return true;
    case 16: reg.Add(name, GenTyped<16>(kind, n, seed)); return true;
    default: return false;
  }
}

void PrintResponse(const std::string& what, const std::string& name,
                   const EngineResponse& r) {
  if (!r.ok) {
    std::printf("err %s %s: %s\n", what.c_str(), name.c_str(),
                r.error.c_str());
    return;
  }
  std::ostringstream body;
  if (r.mst) {
    body << " mst_edges=" << r.mst->size() << " mst_weight=" << r.mst_weight;
  }
  if (!r.labels.empty()) {
    body << " clusters=" << r.num_clusters << " noise=" << r.num_noise;
  }
  if (r.plot) body << " plot_points=" << r.plot->order.size();
  if (r.dendrogram && !r.plot && r.labels.empty()) {
    body << " dendro_root_height="
         << (r.dendrogram->num_points() > 1
                 ? r.dendrogram->Height(r.dendrogram->root())
                 : 0.0);
  }
  std::printf("ok %s %s%s built=%s reused=%s secs=%.4f\n", what.c_str(),
              name.c_str(), body.str().c_str(), JoinKeys(r.built).c_str(),
              JoinKeys(r.reused).c_str(), r.seconds);
}

void Help() {
  std::printf(
      "commands:\n"
      "  gen <name> <dim> <uniform|varden|levy|gauss> <n> [seed]\n"
      "  load <name> <csv|bin|snap> <path>\n"
      "  save <name> <dir>\n"
      "  dyn <name> <dim>\n"
      "  insert <name> <coords...>\n"
      "  geninsert <name> <dim> <kind> <n> [seed]\n"
      "  delete <name> <gid> [gid ...]\n"
      "  list | drop <name>\n"
      "  emst <name>\n"
      "  slink <name> <k>\n"
      "  hdbscan <name> <minPts>\n"
      "  dbscan <name> <minPts> <eps>\n"
      "  reach <name> <minPts>\n"
      "  clusters <name> <minPts> <minClusterSize>\n"
      "  help | quit\n");
}

}  // namespace

int main() {
  using namespace parhc;
  ClusteringEngine engine;
  std::string line;
  while (std::getline(std::cin, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ss(line);
    std::string cmd;
    ss >> cmd;
    try {
      if (cmd == "quit" || cmd == "exit") {
        break;
      } else if (cmd == "help") {
        Help();
      } else if (cmd == "gen") {
        std::string name, kind;
        int dim = 0;
        size_t n = 0;
        uint64_t seed = 1;
        ss >> name >> dim >> kind >> n;
        if (!(ss >> seed)) seed = 1;
        if (name.empty() || n == 0 ||
            !Generate(engine.registry(), name, dim, kind, n, seed)) {
          std::printf("err gen: usage/unsupported dim or kind\n");
        } else {
          std::printf("ok gen %s dim=%d n=%zu kind=%s\n", name.c_str(), dim,
                      n, kind.c_str());
        }
      } else if (cmd == "load") {
        std::string name, fmt, path;
        ss >> name >> fmt >> path;
        if (fmt != "csv" && fmt != "bin" && fmt != "snap") {
          std::printf("err load: format must be csv, bin, or snap\n");
          continue;
        }
        std::string err;
        if (fmt == "snap") {
          // Snapshot problems (missing, truncated, corrupt, or
          // version-mismatched files) come back as typed errors turned
          // into strings — never aborts.
          err = engine.LoadDataset(name, path);
        } else {
          if (std::ifstream probe(path); !probe.good()) {
            std::printf("err load %s: cannot open %s\n", name.c_str(),
                        path.c_str());
            continue;
          }
          // Both loaders surface bad data as errors (CSV parse failures
          // and malformed binary files throw; caught below), never aborts.
          err = fmt == "csv"
                    ? engine.registry().TryAddRows(name, ReadPointsCsv(path))
                    : engine.registry().TryAddBin(name, path);
        }
        if (!err.empty()) {
          std::printf("err load %s: %s\n", name.c_str(), err.c_str());
          continue;
        }
        auto entry = engine.registry().Find(name);
        std::printf("ok load %s dim=%d n=%zu%s\n", name.c_str(),
                    entry->dim(), entry->num_points(),
                    fmt == "snap" ? " warm" : "");
      } else if (cmd == "save") {
        std::string name, dir;
        ss >> name >> dir;
        if (name.empty() || dir.empty()) {
          std::printf("err save: usage: save <name> <dir>\n");
          continue;
        }
        std::string err = engine.SaveDataset(name, dir);
        if (!err.empty()) {
          std::printf("err save %s: %s\n", name.c_str(), err.c_str());
        } else {
          std::printf("ok save %s dir=%s\n", name.c_str(), dir.c_str());
        }
      } else if (cmd == "dyn") {
        std::string name;
        int dim = 0;
        ss >> name >> dim;
        if (ss.fail() || name.empty()) {
          std::printf("err dyn: usage: dyn <name> <dim>\n");
          continue;
        }
        std::string err = engine.registry().TryAddDynamic(name, dim);
        if (!err.empty()) {
          std::printf("err dyn %s: %s\n", name.c_str(), err.c_str());
        } else {
          std::printf("ok dyn %s dim=%d\n", name.c_str(), dim);
        }
      } else if (cmd == "insert") {
        std::string name;
        ss >> name;
        auto entry = engine.registry().Find(name);
        if (!entry) {
          std::printf("err insert %s: unknown dataset\n", name.c_str());
          continue;
        }
        int dim = entry->dim();
        std::vector<double> vals;
        double v;
        while (ss >> v) vals.push_back(v);
        // A malformed token must not silently truncate the batch and print
        // "ok" (same rule the query verbs enforce below).
        if (!ss.eof()) {
          std::printf("err insert %s: malformed coordinate\n", name.c_str());
          continue;
        }
        if (vals.empty() || vals.size() % static_cast<size_t>(dim) != 0) {
          std::printf("err insert %s: need a multiple of %d coordinates\n",
                      name.c_str(), dim);
          continue;
        }
        std::vector<std::vector<double>> rows(vals.size() / dim);
        for (size_t i = 0; i < rows.size(); ++i) {
          rows[i].assign(vals.begin() + i * dim, vals.begin() + (i + 1) * dim);
        }
        uint32_t first = 0;
        std::string err = engine.InsertBatch(name, rows, &first);
        if (!err.empty()) {
          std::printf("err insert %s: %s\n", name.c_str(), err.c_str());
        } else {
          std::printf("ok insert %s n=%zu gids=[%u,%u)\n", name.c_str(),
                      rows.size(), first,
                      first + static_cast<uint32_t>(rows.size()));
        }
      } else if (cmd == "geninsert") {
        std::string name, kind;
        int dim = 0;
        size_t n = 0;
        uint64_t seed = 1;
        ss >> name >> dim >> kind >> n;
        if (!(ss >> seed)) seed = 1;
        if (name.empty() || n == 0 || !DatasetRegistry::SupportedDim(dim)) {
          std::printf("err geninsert: usage/unsupported dim\n");
          continue;
        }
        // Validate the generator kind before the create-if-absent side
        // effect, so a typo doesn't leave a spurious empty dataset behind.
        std::vector<std::vector<double>> rows = GenRows(dim, kind, n, seed);
        if (rows.empty()) {
          std::printf("err geninsert: unknown kind %s\n", kind.c_str());
          continue;
        }
        if (!engine.registry().Find(name)) {
          engine.registry().TryAddDynamic(name, dim);
        }
        uint32_t first = 0;
        std::string err = engine.InsertBatch(name, rows, &first);
        if (!err.empty()) {
          std::printf("err geninsert %s: %s\n", name.c_str(), err.c_str());
        } else {
          std::printf("ok geninsert %s n=%zu gids=[%u,%u)\n", name.c_str(), n,
                      first, first + static_cast<uint32_t>(n));
        }
      } else if (cmd == "delete") {
        std::string name;
        ss >> name;
        std::vector<uint32_t> gids;
        uint32_t gid;
        while (ss >> gid) gids.push_back(gid);
        if (!ss.eof()) {
          std::printf("err delete %s: malformed gid\n", name.c_str());
          continue;
        }
        if (name.empty() || gids.empty()) {
          std::printf("err delete: usage: delete <name> <gid> [gid ...]\n");
          continue;
        }
        size_t deleted = 0;
        std::string err = engine.DeleteBatch(name, gids, &deleted);
        if (!err.empty()) {
          std::printf("err delete %s: %s\n", name.c_str(), err.c_str());
        } else {
          std::printf("ok delete %s deleted=%zu\n", name.c_str(), deleted);
        }
      } else if (cmd == "list") {
        for (const DatasetInfo& info : engine.registry().List()) {
          std::string extra;
          if (info.dynamic) {
            extra = " dynamic shards=" + std::to_string(info.num_shards);
          }
          std::printf("dataset %s dim=%d n=%zu knn_k=%zu cached=%zu%s\n",
                      info.name.c_str(), info.dim, info.num_points,
                      info.knn_k, info.cached_clusterings, extra.c_str());
        }
        std::printf("ok list\n");
      } else if (cmd == "drop") {
        std::string name;
        ss >> name;
        std::printf(engine.registry().Remove(name) ? "ok drop %s\n"
                                                   : "err drop %s: unknown\n",
                    name.c_str());
      } else if (cmd == "emst" || cmd == "slink" || cmd == "hdbscan" ||
                 cmd == "dbscan" || cmd == "reach" || cmd == "clusters") {
        EngineRequest req;
        ss >> req.dataset;
        if (cmd == "emst") {
          req.type = QueryType::kEmst;
        } else if (cmd == "slink") {
          req.type = QueryType::kSingleLinkage;
          ss >> req.k;
        } else if (cmd == "hdbscan") {
          req.type = QueryType::kHdbscan;
          ss >> req.min_pts;
        } else if (cmd == "dbscan") {
          req.type = QueryType::kDbscanStarAt;
          ss >> req.min_pts >> req.eps;
        } else if (cmd == "reach") {
          req.type = QueryType::kReachability;
          ss >> req.min_pts;
        } else {
          req.type = QueryType::kStableClusters;
          ss >> req.min_pts >> req.min_cluster_size;
        }
        // A missing or malformed argument must not silently fall back to a
        // default parameterization and print "ok".
        if (ss.fail() || req.dataset.empty()) {
          std::printf("err %s: missing or malformed arguments (try help)\n",
                      cmd.c_str());
          continue;
        }
        PrintResponse(cmd, req.dataset, engine.Run(req));
      } else {
        std::printf("err unknown command: %s (try help)\n", cmd.c_str());
      }
    } catch (const std::exception& e) {
      std::printf("err %s: %s\n", cmd.c_str(), e.what());
    }
    std::fflush(stdout);
  }
  return 0;
}
