// parhc_server: the line-protocol stdin/stdout front-end over the
// ClusteringEngine.
//
// Reads commands from stdin and answers on stdout, so it works both as an
// interactive REPL and in batch mode (pipe a script in; used by the CI
// examples smoke step). Blank lines and '#' comments are ignored.
//
// All verb parsing, execution, and response formatting lives in the
// shared protocol core (src/net/protocol.h) — the TCP front-end
// (parhc_netserver) answers with the same bytes. Run `help` (or see
// protocol.h) for the command list; responses look like
//   ok hdbscan d mst_edges=9999 mst_weight=123.456 built=[mst@10,dendro@10]
//      reused=[tree,knn@50,cd@10] secs=0.42
//
// Input is split with the same FrameSplitter the TCP server uses, fed
// with FlushEof at end of input: a final line *without* a trailing
// newline is processed and answered like any other line, not dropped.
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>

#include "net/frame.h"
#include "net/protocol.h"
#include "obs/sources.h"
#include "parhc.h"

int main(int argc, char** argv) {
  using namespace parhc;
  // --workers N pins the fork-join scheduler's pool size; the
  // PARHC_WORKERS environment variable does the same without a flag
  // (honored by Scheduler::Get on first use).
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--workers") == 0 && i + 1 < argc) {
      int w = std::atoi(argv[++i]);
      if (w >= 1) SetNumWorkers(w);
    } else {
      std::fprintf(stderr, "usage: %s [--workers N]\n", argv[0]);
      return 2;
    }
  }
  ClusteringEngine engine;
  // REPL observability: engine/algorithm metrics behind the `metrics`
  // verb and a slow-query/build log behind `slowlog` (no server counters
  // here — there is no TCP front-end).
  obs::Observability observability;
  obs::RegisterEngineMetrics(observability.metrics, engine);
  obs::RegisterAlgorithmMetrics(observability.metrics);
  obs::RegisterObsMetrics(observability.metrics, observability.slowlog);
  engine.set_slowlog(&observability.slowlog);
  net::ProtocolOptions popts;
  popts.obs = &observability;
  net::ProtocolSession session(engine, popts);
  // Text-only splitting on stdin: a 0x01 byte is line data, not a binary
  // frame (binary frames are a TCP-transport feature), and lines may be
  // arbitrarily long (the 1 MiB cap protects the TCP server from remote
  // peers; the pre-refactor getline REPL had no cap).
  net::FrameSplitter splitter(
      /*allow_binary=*/false,
      /*max_line_bytes=*/std::numeric_limits<size_t>::max());

  char buf[1 << 16];
  bool eof = false;
  while (!eof) {
    // read(2), not fread: a short read (one interactive line) must be
    // processed immediately, not buffered until 64 KiB accumulate.
    ssize_t n = ::read(STDIN_FILENO, buf, sizeof buf);
    if (n < 0 && errno == EINTR) continue;
    if (n > 0) {
      splitter.Feed(buf, static_cast<size_t>(n));
    } else {
      splitter.FlushEof();
      eof = true;
    }
    net::WireMessage msg;
    while (splitter.Next(&msg)) {
      net::ProtocolResult res = session.Handle(msg);
      if (!res.out.empty()) {
        std::fwrite(res.out.data(), 1, res.out.size(), stdout);
        std::fflush(stdout);
      }
      if (res.quit) return 0;
    }
  }
  return 0;
}
