// parhc_router: the multi-node serving tier.
//
// Fronts N parhc_netserver workers with the same wire protocol the
// workers speak, so single-node clients work unchanged: replicated
// datasets (gen/load) fan reads out round-robin for throughput, sharded
// datasets (dyn/geninsert) run distributed EMST / HDBSCAN* builds whose
// answers are bit-identical to a single-node engine over the union. See
// src/cluster/router.h and README "Multi-node serving".
//
// Usage: parhc_router --upstream HOST:PORT [--upstream HOST:PORT ...]
//   --port N        listen port (default 7078; 0 = ephemeral)
//   --bind ADDR     bind address (default 127.0.0.1)
//   --upstream A    one worker address; repeat per worker (required)
//   --fanout N      bound on concurrent upstream round trips per fan-out
//                   (default 0 = all workers at once)
//   --timeout-ms N  per-round-trip upstream I/O timeout (default 30000)
//   --health-ms N   health-check interval (default 1000)
//   --workers N     query worker threads (default 4)
//   --queue N       global queued-request bound before load-shed (1024)
//   --pipeline N    per-connection pipelining bound (128)
//   --idle-ms N     idle connection timeout, <=0 disables (300000)
//   --poll          force the poll(2) backend instead of epoll
//   --no-timing     omit the secs= field from query responses
//   --slow-us N     slow-query log threshold in microseconds (10000)
//   --trace         enable request tracing at startup
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "cluster/router.h"
#include "net/server.h"
#include "parhc.h"

int main(int argc, char** argv) {
  using namespace parhc;
  net::NetServerOptions opts;
  opts.port = 7078;
  opts.install_signal_handlers = true;
  cluster::RouterOptions ropts;
  std::vector<std::string> upstreams;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--port") {
      opts.port = static_cast<uint16_t>(std::atoi(next("--port")));
    } else if (arg == "--bind") {
      opts.bind_addr = next("--bind");
    } else if (arg == "--upstream") {
      upstreams.push_back(next("--upstream"));
    } else if (arg == "--fanout") {
      ropts.fanout = static_cast<size_t>(std::atoll(next("--fanout")));
    } else if (arg == "--timeout-ms") {
      ropts.upstream_timeout_ms = std::atoi(next("--timeout-ms"));
    } else if (arg == "--health-ms") {
      ropts.health_interval_ms = std::atoi(next("--health-ms"));
    } else if (arg == "--workers") {
      opts.workers = std::atoi(next("--workers"));
    } else if (arg == "--queue") {
      opts.max_queued = static_cast<size_t>(std::atoll(next("--queue")));
    } else if (arg == "--pipeline") {
      opts.max_pipelined =
          static_cast<size_t>(std::atoll(next("--pipeline")));
    } else if (arg == "--idle-ms") {
      opts.idle_timeout_ms = std::atoi(next("--idle-ms"));
    } else if (arg == "--poll") {
      opts.use_poll = true;
    } else if (arg == "--no-timing") {
      opts.show_timing = false;
    } else if (arg == "--slow-us") {
      opts.slow_query_us =
          static_cast<uint64_t>(std::atoll(next("--slow-us")));
    } else if (arg == "--trace") {
      opts.trace = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return 2;
    }
  }
  if (upstreams.empty()) {
    std::fprintf(stderr,
                 "parhc_router: need at least one --upstream HOST:PORT\n");
    return 2;
  }

  cluster::Router router(upstreams, ropts);
  std::string err = router.Start();
  if (!err.empty()) {
    std::fprintf(stderr, "parhc_router: %s\n", err.c_str());
    return 1;
  }
  cluster::RouterSessionFactory factory(router);
  net::NetServer server(factory, opts);
  err = server.Start();
  if (!err.empty()) {
    std::fprintf(stderr, "parhc_router: %s\n", err.c_str());
    return 1;
  }
  std::printf(
      "parhc_router listening on %s:%u proto=%d upstreams=%zu workers=%d\n",
      opts.bind_addr.c_str(), server.port(), net::kProtocolVersion,
      upstreams.size(), opts.workers);
  std::fflush(stdout);
  server.Run();  // returns after SIGINT/SIGTERM graceful drain
  router.Stop();
  std::printf("parhc_router drained, bye\n");
  return 0;
}
