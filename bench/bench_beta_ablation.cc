// Design-choice ablation (Section 3.1.2): the parallel GFK doubles beta
// every round ("crucial for achieving a low depth bound"), while the
// sequential algorithm of Chatterjee et al. increments it. This ablation
// runs MemoGFK with beta *= 2 vs beta += 1 vs beta += 8 and reports the
// round-loop cost difference.
#include "bench_common.h"

#include "emst/emst_memogfk.h"

namespace parhc_bench {
namespace {

void RegisterAll() {
  size_t n = EnvN();
  int maxt = EnvMaxThreads();
  struct Growth {
    const char* name;
    MemoGfkOptions opts;
  } growths[] = {
      {"beta-x2", {2.0, 0}},
      {"beta-x4", {4.0, 0}},
      {"beta-add1", {1.0, 1}},
      {"beta-add8", {1.0, 8}},
  };
  std::vector<DatasetSpec> sets = {
      {"2D-UniformFill", 2, "uniform"},
      {"5D-UniformFill", 5, "uniform"},
      {"3D-SS-varden", 3, "varden"},
  };
  for (const DatasetSpec& ds : sets) {
    for (const Growth& g : growths) {
      std::string name =
          std::string("BetaAblation/") + g.name + "/" + ds.label;
      benchmark::RegisterBenchmark(
          name.c_str(),
          [=](benchmark::State& st) {
            DispatchDataset(ds, n, [&](const auto& pts) {
              SetNumWorkers(maxt);
              AlgoCounterSnapshot last;
              for (auto _ : st) {
                StatsEpoch epoch;
                benchmark::DoNotOptimize(
                    EmstMemoGfk(pts, nullptr, g.opts).data());
                last = epoch.Delta();
              }
              st.counters["pairs_visited"] =
                  static_cast<double>(last.wspd_pairs_visited);
              st.counters["bccp_calls"] =
                  static_cast<double>(last.bccp_computed);
            });
          })
          ->Unit(benchmark::kMillisecond)
          ->Iterations(EnvIters());
    }
  }
}

}  // namespace
}  // namespace parhc_bench

int main(int argc, char** argv) {
  parhc_bench::RegisterAll();
  benchmark::Initialize(&argc, argv);
  parhc_bench::AddMachineContext();
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
