// Figure 10 / Appendix C: approximate OPTICS (rho = 0.125, separation s = 8)
// vs the exact HDBSCAN* variants. The paper finds the approximate algorithm
// 1.00-1.96x slower than HDBSCAN*-GanTao and 1.72-7.48x slower than
// HDBSCAN*-MemoGFK because the large separation constant explodes the
// number of well-separated pairs; base_edges counters expose that cause.
#include "bench_common.h"

namespace parhc_bench {
namespace {

constexpr int kMinPts = 10;
constexpr double kRho = 0.125;

void RegisterAll() {
  size_t n = EnvN();
  int maxt = EnvMaxThreads();
  // The paper's Figure 10 uses the 7D-Household and 16D-CHEM datasets;
  // include a low-dimensional control as well.
  std::vector<DatasetSpec> sets = {
      {"2D-UniformFill", 2, "uniform"},
      {"7D-Household-sim", 7, "gauss"},
      {"16D-CHEM-sim", 16, "gauss"},
  };
  for (const DatasetSpec& ds : sets) {
    for (int threads : {1, maxt}) {
      std::string suffix =
          std::string("/") + ds.label + "/workers:" + std::to_string(threads);
      benchmark::RegisterBenchmark(
          ("Fig10/OPTICS-GanTaoApprox" + suffix).c_str(),
          [=](benchmark::State& st) {
            DispatchDataset(ds, n, [&](const auto& pts) {
              SetNumWorkers(threads);
              uint64_t base_edges = 0;
              for (auto _ : st) {
                auto r = OpticsApproxMst(pts, kMinPts, kRho);
                base_edges = r.base_graph_edges;
                benchmark::DoNotOptimize(r.mst.data());
              }
              st.counters["base_edges"] = static_cast<double>(base_edges);
              st.counters["rho"] = kRho;
            });
          })
          ->Unit(benchmark::kMillisecond)
          ->Iterations(EnvIters());
      for (auto [vname, v] :
           {std::pair{"HDBSCAN-MemoGFK", HdbscanVariant::kMemoGfk},
            std::pair{"HDBSCAN-GanTao", HdbscanVariant::kGanTao}}) {
        benchmark::RegisterBenchmark(
            (std::string("Fig10/") + vname + suffix).c_str(),
            [=, v = v](benchmark::State& st) {
              DispatchDataset(ds, n, [&](const auto& pts) {
                SetNumWorkers(threads);
                StatsEpoch epoch;
                for (auto _ : st) {
                  auto r = HdbscanMst(pts, kMinPts, v);
                  benchmark::DoNotOptimize(r.mst.data());
                }
                st.counters["pairs"] = static_cast<double>(
                    epoch.Delta().wspd_pairs_materialized);
              });
            })
            ->Unit(benchmark::kMillisecond)
            ->Iterations(EnvIters());
      }
    }
  }
}

}  // namespace
}  // namespace parhc_bench

int main(int argc, char** argv) {
  parhc_bench::RegisterAll();
  benchmark::Initialize(&argc, argv);
  parhc_bench::AddMachineContext();
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
