// Table 4: EMST running times — four WSPD/tree methods plus EMST-Delaunay
// (2D only) x full dataset suite x {1 worker, all workers}. Methods the
// paper marks "-" at high dimension (Naive/GFK beyond 10D) are skipped the
// same way.
#include "bench_common.h"

#include "emst/emst_delaunay.h"

namespace parhc_bench {
namespace {

void RegisterAll() {
  size_t n = EnvN();
  int maxt = EnvMaxThreads();
  for (const DatasetSpec& ds : StandardDatasets()) {
    for (const EmstMethod& m : EmstMethods()) {
      if (ds.dim > m.max_dim) continue;
      for (int threads : {1, maxt}) {
        std::string name = std::string("Table4/") + m.name + "/" + ds.label +
                           "/workers:" + std::to_string(threads);
        benchmark::RegisterBenchmark(
            name.c_str(),
            [=](benchmark::State& st) {
              DispatchDataset(ds, n, [&](const auto& pts) {
                SetNumWorkers(threads);
                size_t edges = 0;
                for (auto _ : st) {
                  auto mst = RunEmst(pts, m.algo);
                  edges = mst.size();
                  benchmark::DoNotOptimize(edges);
                }
                st.counters["n"] = static_cast<double>(pts.size());
                st.counters["edges"] = static_cast<double>(edges);
              });
            })
            ->Unit(benchmark::kMillisecond)
            ->Iterations(EnvIters());
      }
    }
    if (ds.dim == 2) {
      for (int threads : {1, maxt}) {
        std::string name = std::string("Table4/EMST-Delaunay/") + ds.label +
                           "/workers:" + std::to_string(threads);
        benchmark::RegisterBenchmark(
            name.c_str(),
            [=](benchmark::State& st) {
              const auto& pts = GetDataset<2>(ds.kind, n);
              SetNumWorkers(threads);
              for (auto _ : st) {
                auto mst = EmstDelaunay(pts);
                benchmark::DoNotOptimize(mst.data());
              }
              st.counters["n"] = static_cast<double>(pts.size());
            })
            ->Unit(benchmark::kMillisecond)
            ->Iterations(EnvIters());
      }
    }
  }
}

}  // namespace
}  // namespace parhc_bench

int main(int argc, char** argv) {
  parhc_bench::RegisterAll();
  benchmark::Initialize(&argc, argv);
  parhc_bench::AddMachineContext();
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
