// Persistent artifact store (src/store/): warm-start serving versus a
// cold rebuild.
//
// Scenario: a dataset is registered in a ClusteringEngine, fully warmed
// (kd-tree, kNN prefixes @ minPts, MR-MST, dendrogram) by one HDBSCAN*
// query, and snapshotted to disk. Two strategies then stand up a fresh
// engine and answer the same HDBSCAN* query:
//   cold   register the raw points, rebuild every artifact;
//   warm   LoadDataset from the snapshot (mmap-backed, zero-copy arena +
//          prefix matrix) and answer from the loaded cache.
// Counters report both times and `speedup` (cold / warm, including the
// load itself), plus `identical` = 1 iff the warm answers are
// bit-identical to the cold ones (EMST weight, MR-MST weight, core
// distances, flat stable-cluster labels). The acceptance target is
// speedup >= 10 at N = 1M, 2D (see README "Persistence & warm start" for
// measured numbers). CI runs a small-N smoke via the bench_snapshot_smoke
// target, emitting BENCH_snapshot.json.
#include <cstdio>
#include <filesystem>

#include "bench_common.h"

namespace parhc_bench {
namespace {

constexpr int kMinPts = 16;
constexpr size_t kMinClusterSize = 50;

template <int D>
std::vector<Point<D>> Gen(const std::string& kind, size_t n, uint64_t seed) {
  if (kind == "uniform") return UniformFill<D>(n, seed);
  return SeedSpreaderVarden<D>(n, seed);
}

struct Answers {
  double mr_mst_weight = 0;
  double emst_weight = 0;
  std::shared_ptr<const std::vector<double>> core_dist;
  std::vector<int32_t> labels;
  double secs = 0;  ///< wall clock to produce the answers (build or load)
};

/// Registers (or loads) the dataset and answers the query mix, timing
/// everything end to end.
template <int D>
Answers AnswerQueries(ClusteringEngine& engine, const std::string& name) {
  Answers a;
  EngineRequest req;
  req.dataset = name;
  req.type = QueryType::kHdbscan;
  req.min_pts = kMinPts;
  EngineResponse h = engine.Run(req);
  PARHC_CHECK_MSG(h.ok, h.error.c_str());
  a.mr_mst_weight = h.mst_weight;
  a.core_dist = h.core_dist;
  req.type = QueryType::kStableClusters;
  req.min_cluster_size = kMinClusterSize;
  EngineResponse c = engine.Run(req);
  PARHC_CHECK_MSG(c.ok, c.error.c_str());
  a.labels = std::move(c.labels);
  req.type = QueryType::kEmst;
  EngineResponse e = engine.Run(req);
  PARHC_CHECK_MSG(e.ok, e.error.c_str());
  a.emst_weight = e.mst_weight;
  return a;
}

bool BitIdentical(const Answers& a, const Answers& b) {
  if (a.mr_mst_weight != b.mr_mst_weight) return false;
  if (a.emst_weight != b.emst_weight) return false;
  if (a.labels != b.labels) return false;
  if (a.core_dist->size() != b.core_dist->size()) return false;
  for (size_t i = 0; i < a.core_dist->size(); ++i) {
    if ((*a.core_dist)[i] != (*b.core_dist)[i]) return false;
  }
  return true;
}

template <int D>
void RunSnapshot(benchmark::State& st, const std::string& kind, size_t n,
                 int workers) {
  SetNumWorkers(workers);
  std::vector<Point<D>> pts = Gen<D>(kind, n, 1);
  std::string dir =
      (std::filesystem::temp_directory_path() /
       ("parhc_bench_snapshot_" + std::to_string(n) + "d" +
        std::to_string(D)))
          .string();

  for (auto _ : st) {
    // Cold path: raw points in, every artifact rebuilt.
    Timer t;
    ClusteringEngine cold;
    cold.registry().Add("d", pts);
    Answers cold_a = AnswerQueries<D>(cold, "d");
    cold_a.secs = t.Seconds();

    std::filesystem::remove_all(dir);
    t.Reset();
    std::string err = cold.SaveDataset("d", dir);
    PARHC_CHECK_MSG(err.empty(), err.c_str());
    double save_secs = t.Seconds();

    // Warm path: mmap the snapshot, answer from the loaded cache.
    t.Reset();
    ClusteringEngine warm;
    err = warm.LoadDataset("d", dir);
    PARHC_CHECK_MSG(err.empty(), err.c_str());
    Answers warm_a = AnswerQueries<D>(warm, "d");
    warm_a.secs = t.Seconds();

    st.counters["cold_secs"] = cold_a.secs;
    st.counters["save_secs"] = save_secs;
    st.counters["warm_secs"] = warm_a.secs;
    st.counters["speedup"] = cold_a.secs / warm_a.secs;
    st.counters["identical"] = BitIdentical(cold_a, warm_a) ? 1 : 0;
  }
  std::filesystem::remove_all(dir);
  st.counters["n"] = static_cast<double>(n);
  st.counters["min_pts"] = kMinPts;
  st.counters["workers"] = workers;
}

void RegisterAll() {
  size_t n = EnvN(100000);
  int maxt = EnvMaxThreads();
  benchmark::RegisterBenchmark(
      "SnapshotWarmStart/2D-UniformFill",
      [=](benchmark::State& st) { RunSnapshot<2>(st, "uniform", n, maxt); })
      ->Unit(benchmark::kMillisecond)
      ->Iterations(EnvIters());
  benchmark::RegisterBenchmark(
      "SnapshotWarmStart/3D-SS-varden",
      [=](benchmark::State& st) { RunSnapshot<3>(st, "varden", n, maxt); })
      ->Unit(benchmark::kMillisecond)
      ->Iterations(EnvIters());
}

}  // namespace
}  // namespace parhc_bench

int main(int argc, char** argv) {
  parhc_bench::RegisterAll();
  benchmark::Initialize(&argc, argv);
  parhc_bench::AddMachineContext();
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
