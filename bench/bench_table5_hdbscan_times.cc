// Table 5: HDBSCAN* running times (minPts = 10) — HDBSCAN*-MemoGFK vs
// HDBSCAN*-GanTao x full dataset suite x {1 worker, all workers}. As in the
// paper, the measured time covers the mutual-reachability MST plus the
// ordered dendrogram.
#include "bench_common.h"

namespace parhc_bench {
namespace {

constexpr int kMinPts = 10;

void RegisterAll() {
  size_t n = EnvN();
  int maxt = EnvMaxThreads();
  struct Variant {
    const char* name;
    HdbscanVariant v;
  } variants[] = {
      {"HDBSCAN-MemoGFK", HdbscanVariant::kMemoGfk},
      {"HDBSCAN-GanTao", HdbscanVariant::kGanTao},
  };
  for (const DatasetSpec& ds : StandardDatasets()) {
    for (const Variant& var : variants) {
      for (int threads : {1, maxt}) {
        std::string name = std::string("Table5/") + var.name + "/" +
                           ds.label + "/workers:" + std::to_string(threads);
        benchmark::RegisterBenchmark(
            name.c_str(),
            [=](benchmark::State& st) {
              DispatchDataset(ds, n, [&](const auto& pts) {
                SetNumWorkers(threads);
                for (auto _ : st) {
                  auto result = Hdbscan(pts, kMinPts, var.v);
                  benchmark::DoNotOptimize(result.mst.data());
                }
                st.counters["n"] = static_cast<double>(pts.size());
                st.counters["minPts"] = kMinPts;
              });
            })
            ->Unit(benchmark::kMillisecond)
            ->Iterations(EnvIters());
      }
    }
  }
}

}  // namespace
}  // namespace parhc_bench

int main(int argc, char** argv) {
  parhc_bench::RegisterAll();
  benchmark::Initialize(&argc, argv);
  parhc_bench::AddMachineContext();
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
