// Figure 9: ordered dendrogram construction — self-relative speedup and
// running time for (a) single-linkage clustering input (the EMST) and
// (b) the HDBSCAN* MST (minPts = 10), per dataset.
//
// The MSTs are built once per dataset outside the timed region; each
// benchmark times BuildDendrogramParallel and reports the sequential
// builder's time and the self-speedup as counters.
#include "bench_common.h"

namespace parhc_bench {
namespace {

struct TreeCase {
  std::string label;
  size_t n;
  std::vector<WeightedEdge> edges;
};

std::vector<TreeCase>& Cases() {
  static std::vector<TreeCase> cases;
  return cases;
}

void BuildCases(size_t n) {
  for (const DatasetSpec& ds : CoreDatasets()) {
    DispatchDataset(ds, n, [&](const auto& pts) {
      SetNumWorkers(EnvMaxThreads());
      Cases().push_back({std::string("SingleLinkage/") + ds.label,
                         pts.size(), EmstMemoGfk(pts)});
      auto h = HdbscanMst(pts, 10, HdbscanVariant::kMemoGfk);
      Cases().push_back({std::string("HDBSCAN-minPts10/") + ds.label,
                         pts.size(), std::move(h.mst)});
    });
  }
}

void RegisterAll() {
  BuildCases(EnvN());
  int maxt = EnvMaxThreads();
  for (size_t i = 0; i < Cases().size(); ++i) {
    std::string name = "Fig9/" + Cases()[i].label;
    benchmark::RegisterBenchmark(
        name.c_str(),
        [i, maxt](benchmark::State& st) {
          const TreeCase& tc = Cases()[i];
          SetNumWorkers(1);
          Timer t;
          Dendrogram ds = BuildDendrogramSequential(tc.n, tc.edges, 0);
          benchmark::DoNotOptimize(ds.root());
          double t_seq = t.Seconds();
          SetNumWorkers(maxt);
          double t_par = 0;
          for (auto _ : st) {
            Timer tt;
            Dendrogram dp = BuildDendrogramParallel(tc.n, tc.edges, 0);
            benchmark::DoNotOptimize(dp.root());
            t_par = tt.Seconds();
          }
          st.counters["seq_ms"] = t_seq * 1e3;
          st.counters["par_ms"] = t_par * 1e3;
          st.counters["self_speedup"] = t_seq / t_par;
          st.counters["workers"] = maxt;
        })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(EnvIters());
  }
}

}  // namespace
}  // namespace parhc_bench

int main(int argc, char** argv) {
  parhc_bench::RegisterAll();
  benchmark::Initialize(&argc, argv);
  parhc_bench::AddMachineContext();
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
