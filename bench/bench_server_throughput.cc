// Loopback throughput of the networked serving layer (src/net/): one
// strict request/response client (the "single REPL client" baseline)
// versus 32 concurrent pipelined connections, both hammering the same
// warm dataset in one in-process NetServer.
//
// Scenario: a dataset is generated and fully warmed (tree, kNN@minPts,
// MR-MST, dendrogram) so every benchmark query is a cache-hit read — the
// serving layer itself is the bottleneck, not artifact builds. Then:
//   single  1 connection, 1 outstanding request (send, wait, repeat) —
//           every query pays a full loopback round trip;
//   multi   kClients=32 connections, each pipelining kWindow requests —
//           the event loop batches reads, the worker pool answers
//           concurrently under the engine's shared-lock read path.
// Counters report both rates and `speedup` (multi qps / single qps; the
// acceptance target is >= 10x at N = 1M, see README "Network serving"),
// `identical` = 1 iff every one of the ~70k responses is byte-identical
// to the single-threaded protocol-core answer (the REPL path), and
// `dropped`/`shed` from the server (both must be 0 — every request got a
// real answer). CI runs a small-N smoke via bench_server_smoke, emitting
// BENCH_server_throughput.json for the bench-regression gate.
//
// Both families run once per scheduler-pool size in WorkerMatrix()
// (1/4/all-hw, deduplicated) as `.../workers:N` rows: the 1-worker rows
// are the gated floors; multi-worker rows gate on `identical == 1` plus
// monotone non-regression of `qps_multi` (see bench/baselines/gate.json).
// ServerThroughput additionally splits every worker count into
// `trace:off`/`trace:on` rows — the same workload with span recording
// (obs/trace.h) disabled and enabled. The observability layer's <2%
// overhead budget is gated on the separate TraceOverhead row, which
// interleaves untraced and traced multi passes (best-of-N each) against
// one running server and reports `trace_overhead_ratio` =
// qps(on)/qps(off) directly — cross-row comparisons of separately
// measured rows are too noisy for a 2% bound on a loaded smoke machine
// (README "Observability").
//
// The second family, ConcurrentColdBuilds, measures the build executor
// itself: two independent cold HDBSCAN* builds through one engine,
// serialized versus issued from two threads at once. `overlap_ratio` is
// the concurrent wall time over the slower solo build — 1.0 is perfect
// overlap, 2.0 fully serialized. One core can only interleave, so the
// < 1.6x acceptance target applies at >= 4 real cores (README
// "Multicore execution"); the gate allows the serialized worst case.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "net/protocol.h"
#include "net/server.h"
#include "obs/trace.h"

namespace parhc_bench {
namespace {

constexpr int kClients = 32;
constexpr int kWindow = 64;     ///< pipelined requests in flight per conn
constexpr int kMinPts = 16;

/// Blocking loopback client with buffered line reads.
class Client {
 public:
  explicit Client(uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    PARHC_CHECK_MSG(
        ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) == 0,
        "bench client connect failed");
  }
  ~Client() { ::close(fd_); }

  void Send(const std::string& bytes) {
    size_t off = 0;
    while (off < bytes.size()) {
      ssize_t n = ::send(fd_, bytes.data() + off, bytes.size() - off, 0);
      PARHC_CHECK_MSG(n > 0, "bench client send failed");
      off += static_cast<size_t>(n);
    }
  }

  std::string ReadLine() {
    for (;;) {
      size_t nl = buf_.find('\n', pos_);
      if (nl != std::string::npos) {
        std::string line = buf_.substr(pos_, nl + 1 - pos_);
        pos_ = nl + 1;
        // Reclaim lazily: per-line erase(0, n) would memmove the whole
        // remainder each time and dominate the measurement.
        if (pos_ >= 64 * 1024 || pos_ == buf_.size()) {
          buf_.erase(0, pos_);
          pos_ = 0;
        }
        return line;
      }
      char tmp[65536];
      ssize_t n = ::read(fd_, tmp, sizeof tmp);
      PARHC_CHECK_MSG(n > 0, "bench client read failed/eof");
      buf_.append(tmp, static_cast<size_t>(n));
    }
  }

 private:
  int fd_ = -1;
  std::string buf_;
  size_t pos_ = 0;
};

/// One pipelined multi-client pass: `clients` connections, each keeping
/// ~kWindow copies of `query` in flight until `per_client` replies have
/// arrived, every reply compared against `expected`. Returns wall
/// seconds for the pass.
double MultiClientPassSecs(uint16_t port, const std::string& query,
                           const std::string& expected, int per_client,
                           std::atomic<uint64_t>& mismatches,
                           int clients = kClients) {
  std::vector<std::thread> threads;
  threads.reserve(clients);
  Timer t;
  for (int ci = 0; ci < clients; ++ci) {
    threads.emplace_back([&] {
      Client c(port);
      // Keep ~kWindow requests in flight; refill in half-window batches
      // so the client pays one send(2) per kWindow/2 replies, not one
      // per reply.
      int total = per_client;
      int prefill = std::min(kWindow, total);
      std::string burst;
      for (int w = 0; w < prefill; ++w) burst += query;
      c.Send(burst);
      int sent = prefill;
      for (int received = 0; received < total; ++received) {
        if (c.ReadLine() != expected) ++mismatches;
        int outstanding = sent - (received + 1);
        if (sent < total && outstanding <= kWindow / 2) {
          int batch = std::min(kWindow - outstanding, total - sent);
          c.Send(burst.substr(0, batch * query.size()));
          sent += batch;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  return t.Seconds();
}

void RunServerThroughput(benchmark::State& st, size_t n, int workers,
                         bool trace) {
  SetNumWorkers(workers);
  const std::string query = "hdbscan warm " + std::to_string(kMinPts) + "\n";
  // Per-client request counts, scaled down for the CI smoke (tiny N ==
  // smoke mode; the acceptance run at N = 1M uses the full counts).
  const int single_queries = n >= 100000 ? 4000 : 1500;
  const int multi_queries_per_client = n >= 100000 ? 2000 : 400;

  ClusteringEngine engine;
  net::NetServerOptions opts;
  opts.port = 0;
  opts.workers = std::max(4u, std::thread::hardware_concurrency());
  opts.max_queued = 1 << 16;  // no load-shed: every answer must be real
  opts.max_pipelined = kWindow * 2;
  opts.show_timing = false;  // responses compared byte-for-byte
  // The trace:on rows exercise span recording on the hot serving path
  // end to end (the `spans` counter proves it); the 2% overhead bound
  // itself is gated on the interleaved TraceOverhead row below.
  opts.trace = trace;
  const uint64_t spans_before = obs::Tracer::Get().spans_recorded();
  net::NetServer server(engine, opts);
  std::string err = server.Start();
  PARHC_CHECK_MSG(err.empty(), err.c_str());
  std::thread loop([&server] { server.Run(); });

  // Warm the dataset through the shared protocol core (the REPL path) —
  // its answer is also the reference every network response must match.
  net::ProtocolOptions popts;
  popts.show_timing = false;
  net::ProtocolSession repl(engine, popts);
  std::string gen_reply =
      repl.HandleLine("gen warm 2 varden " + std::to_string(n) + " 42").out;
  PARHC_CHECK_MSG(gen_reply.rfind("ok gen", 0) == 0, gen_reply.c_str());
  repl.HandleLine("hdbscan warm " + std::to_string(kMinPts));  // build
  const std::string expected =
      repl.HandleLine("hdbscan warm " + std::to_string(kMinPts)).out;
  PARHC_CHECK_MSG(expected.rfind("ok hdbscan", 0) == 0, expected.c_str());

  for (auto _ : st) {
    // ---- single: strict request/response over one connection ----
    std::atomic<uint64_t> mismatches{0};
    Timer t;
    {
      Client c(server.port());
      for (int i = 0; i < single_queries; ++i) {
        c.Send(query);
        if (c.ReadLine() != expected) ++mismatches;
      }
    }
    double single_secs = t.Seconds();

    // ---- multi: kClients pipelined connections (best of two passes) ----
    double multi_secs = 0;
    for (int rep = 0; rep < 2; ++rep) {
      double secs = MultiClientPassSecs(server.port(), query, expected,
                                        multi_queries_per_client, mismatches);
      if (rep == 0 || secs < multi_secs) multi_secs = secs;
    }

    net::ServerStatsSnapshot stats = server.Stats();
    double qps_single = single_queries / single_secs;
    double qps_multi =
        static_cast<double>(kClients) * multi_queries_per_client /
        multi_secs;
    st.counters["qps_single"] = qps_single;
    st.counters["qps_multi"] = qps_multi;
    st.counters["speedup"] = qps_multi / qps_single;
    st.counters["identical"] = mismatches.load() == 0 ? 1 : 0;
    st.counters["dropped"] = static_cast<double>(stats.dropped);
    st.counters["shed"] = static_cast<double>(stats.shed);
    st.counters["p99_us"] = static_cast<double>(stats.p99_us);
  }
  st.counters["n"] = static_cast<double>(n);
  st.counters["clients"] = kClients;
  st.counters["workers"] = workers;
  st.counters["trace_on"] = trace ? 1 : 0;
  // `spans` proves the trace:on rows actually recorded on the hot path
  // (gated > 0) and stays 0 on the trace:off rows.
  st.counters["spans"] = static_cast<double>(
      obs::Tracer::Get().spans_recorded() - spans_before);
  // The speedup is hardware-bound: on one core only pipelining
  // amortization counts; the concurrent shared-lock read path needs real
  // cores to show (see README "Network serving").
  st.counters["cores"] =
      static_cast<double>(std::thread::hardware_concurrency());

  server.Shutdown();
  loop.join();
  // The tracer is process-global; switch it back off so the next matrix
  // row measures the untraced path.
  if (trace) obs::Tracer::Get().Disable();
}

/// Process CPU seconds (user + system, all threads). The overhead gate
/// measures in CPU time, not wall time: a preempted-by-the-runner pass
/// inflates its wall clock by 10%+ but its CPU charge barely moves, and
/// the per-pass work (64k identical cache-hit requests) is
/// deterministic — so CPU ratios resolve a 2% budget where wall-clock
/// ratios on a shared box cannot.
double ProcessCpuSecs() {
  rusage ru{};
  ::getrusage(RUSAGE_SELF, &ru);
  return static_cast<double>(ru.ru_utime.tv_sec + ru.ru_stime.tv_sec) +
         1e-6 * static_cast<double>(ru.ru_utime.tv_usec +
                                    ru.ru_stime.tv_usec);
}

/// The <2% tracing-overhead gate. The true per-request tracing cost
/// (~tens of ns: an enabled() load, MintTraceId, RecordSpan, and epoch
/// subtractions of timestamps the latency accounting already took — see
/// net/server.cc's inline path) sits far below the end-to-end noise
/// floor of a shared smoke box: differencing traced vs untraced passes
/// swings ±5% run to run in wall AND process-CPU time (the client/event
/// -loop scheduling interleaving changes the futex and epoll-batch
/// counts), so no off/on pass comparison can resolve a 2% budget. The
/// gated statistic instead composes three low-noise measurements of the
/// same quantity:
///   per-request CPU   — untraced serving passes (one pipelined conn,
///                       ProcessCpuSecs; ±5% noise only scales the
///                       ~1% overhead term, so its effect is ~0.05%),
///   spans per request — tracer-enabled serving passes (span-ring delta
///                       over queries answered; exact),
///   per-span cost     — a micro loop of exactly the serving path's
///                       marginal work (deterministic to a few ns),
/// and reports trace_overhead_ratio = 1 - span_ns*spans_per_request/
/// req_cpu_ns, the qps(on)/qps(off) this overhead implies. gate.json
/// floors it at 0.98 (== <2% overhead); a hot-path regression (a lock
/// or syscall in RecordSpan) lands directly in span_ns and trips it.
/// The off/on passes still run interleaved and verified (`identical`),
/// so qps_off/qps_on stay reported — informational, not gated.
void RunTraceOverhead(benchmark::State& st, size_t n) {
  constexpr int kOverheadReps = 3;
  constexpr int kOverheadClients = 1;
  SetNumWorkers(1);
  const std::string query = "hdbscan warm " + std::to_string(kMinPts) + "\n";
  const int per_client = 64000;

  ClusteringEngine engine;
  net::NetServerOptions opts;
  opts.port = 0;
  opts.workers = std::max(4u, std::thread::hardware_concurrency());
  opts.max_queued = 1 << 16;
  opts.max_pipelined = kWindow * 2;
  opts.show_timing = false;
  opts.trace = false;  // toggled per pass below
  net::NetServer server(engine, opts);
  std::string err = server.Start();
  PARHC_CHECK_MSG(err.empty(), err.c_str());
  std::thread loop([&server] { server.Run(); });

  net::ProtocolOptions popts;
  popts.show_timing = false;
  net::ProtocolSession repl(engine, popts);
  std::string gen_reply =
      repl.HandleLine("gen warm 2 varden " + std::to_string(n) + " 42").out;
  PARHC_CHECK_MSG(gen_reply.rfind("ok gen", 0) == 0, gen_reply.c_str());
  repl.HandleLine("hdbscan warm " + std::to_string(kMinPts));  // build
  const std::string expected =
      repl.HandleLine("hdbscan warm " + std::to_string(kMinPts)).out;
  PARHC_CHECK_MSG(expected.rfind("ok hdbscan", 0) == 0, expected.c_str());

  for (auto _ : st) {
    std::atomic<uint64_t> mismatches{0};
    const uint64_t spans_before = obs::Tracer::Get().spans_recorded();
    double best_off = 0, best_on = 0;
    double cpu_off_total = 0;
    for (int rep = 0; rep < kOverheadReps; ++rep) {
      double off = 0, on = 0;
      // Alternate which mode goes first so any "second pass is warmer"
      // bias cancels across the pair set.
      for (int leg = 0; leg < 2; ++leg) {
        bool traced = (leg == 0) == (rep % 2 == 1);
        if (traced) {
          obs::Tracer::Get().Enable();
        } else {
          obs::Tracer::Get().Disable();
        }
        double cpu_before = ProcessCpuSecs();
        double secs = MultiClientPassSecs(server.port(), query, expected,
                                          per_client, mismatches,
                                          kOverheadClients);
        double cpu = ProcessCpuSecs() - cpu_before;
        (traced ? on : off) = secs;
        if (!traced) cpu_off_total += cpu;
      }
      if (rep == 0 || off < best_off) best_off = off;
      if (rep == 0 || on < best_on) best_on = on;
    }
    obs::Tracer::Get().Disable();
    const double total_queries =
        static_cast<double>(kOverheadClients) * per_client;
    const uint64_t spans_delta =
        obs::Tracer::Get().spans_recorded() - spans_before;
    const double spans_per_request =
        static_cast<double>(spans_delta) / (kOverheadReps * total_queries);
    const double req_cpu_ns =
        cpu_off_total * 1e9 / (kOverheadReps * total_queries);

    // Marginal per-span cost: exactly the work the serving path adds
    // per request when tracing is on (net/server.cc inline path) — the
    // begin/end timepoints exist either way for latency accounting.
    obs::Tracer& tracer = obs::Tracer::Get();
    tracer.Enable();
    constexpr int kMicroIters = 2000000;
    const auto micro_t0 = std::chrono::steady_clock::now();
    const auto micro_t1 = micro_t0 + std::chrono::microseconds(3);
    Timer micro;
    for (int i = 0; i < kMicroIters; ++i) {
      if (tracer.enabled()) {
        tracer.RecordSpan("request:hdbscan", "net", tracer.MintTraceId(),
                          obs::ToTraceNs(micro_t0), obs::ToTraceNs(micro_t1));
      }
    }
    const double span_ns = micro.Seconds() * 1e9 / kMicroIters;
    tracer.Disable();

    const double overhead = span_ns * spans_per_request / req_cpu_ns;
    st.counters["qps_off"] = total_queries / best_off;
    st.counters["qps_on"] = total_queries / best_on;
    st.counters["span_ns"] = span_ns;
    st.counters["req_cpu_ns"] = req_cpu_ns;
    st.counters["spans_per_request"] = spans_per_request;
    st.counters["trace_overhead_ratio"] = 1.0 - overhead;
    st.counters["identical"] = mismatches.load() == 0 ? 1 : 0;
    st.counters["spans"] = static_cast<double>(spans_delta);
  }
  st.counters["n"] = static_cast<double>(n);
  st.counters["clients"] = kOverheadClients;
  st.counters["cores"] =
      static_cast<double>(std::thread::hardware_concurrency());

  server.Shutdown();
  loop.join();
}

std::vector<double> SortedWeights(const std::vector<WeightedEdge>& edges) {
  std::vector<double> w;
  w.reserve(edges.size());
  for (const WeightedEdge& e : edges) w.push_back(e.w);
  std::sort(w.begin(), w.end());
  return w;
}

void RunConcurrentColdBuilds(benchmark::State& st, size_t n, int workers) {
  SetNumWorkers(workers);
  const auto& pts_a = GetDataset<2>("uniform", n);
  const auto& pts_b = GetDataset<2>("varden", n);
  auto request = [](const char* ds) {
    EngineRequest req;
    req.dataset = ds;
    req.type = QueryType::kHdbscan;
    req.min_pts = kMinPts;
    return req;
  };
  for (auto _ : st) {
    // Solo reference: each dataset built cold, one after the other. The
    // slower of the two is the overlap-ratio denominator, and the edge
    // weights are the answers the concurrent builds must reproduce.
    std::vector<double> ref_a, ref_b;
    double solo_secs = 0;
    Timer t;
    {
      ClusteringEngine engine;
      engine.registry().Add("a", pts_a);
      engine.registry().Add("b", pts_b);
      t.Reset();
      EngineResponse ra = engine.Run(request("a"));
      double secs_a = t.Seconds();
      t.Reset();
      EngineResponse rb = engine.Run(request("b"));
      double secs_b = t.Seconds();
      PARHC_CHECK(ra.ok && rb.ok);
      ref_a = SortedWeights(*ra.mst);
      ref_b = SortedWeights(*rb.mst);
      solo_secs = std::max(secs_a, secs_b);
    }
    // Concurrent: the same two cold builds issued from two threads into a
    // fresh engine — the executor splits the pool between them.
    ClusteringEngine engine;
    engine.registry().Add("a", pts_a);
    engine.registry().Add("b", pts_b);
    std::vector<double> conc_a;
    t.Reset();
    std::thread other([&] {
      EngineResponse r = engine.Run(request("a"));
      PARHC_CHECK(r.ok);
      conc_a = SortedWeights(*r.mst);
    });
    EngineResponse rb = engine.Run(request("b"));
    other.join();
    double conc_secs = t.Seconds();
    PARHC_CHECK(rb.ok);
    st.counters["overlap_ratio"] = conc_secs / solo_secs;
    st.counters["identical"] =
        (conc_a == ref_a && SortedWeights(*rb.mst) == ref_b) ? 1 : 0;
    st.counters["peak_builds"] =
        static_cast<double>(engine.executor().stats().peak_concurrent);
  }
  st.counters["n"] = static_cast<double>(n);
  st.counters["workers"] = workers;
  st.counters["cores"] =
      static_cast<double>(std::thread::hardware_concurrency());
}

void RegisterAll() {
  size_t n = EnvN(100000);
  benchmark::RegisterBenchmark(
      "TraceOverhead/2D-SS-varden/workers:1",
      [=](benchmark::State& st) { RunTraceOverhead(st, n); })
      ->Unit(benchmark::kMillisecond)
      ->Iterations(EnvIters())
      ->UseRealTime();
  for (int w : WorkerMatrix()) {
    // trace:off/on matrix: same workload with span recording disabled and
    // enabled; gate.json bounds the enabled row within 2% of the off row.
    for (bool trace : {false, true}) {
      std::string name = std::string("ServerThroughput/2D-SS-varden/trace:") +
                         (trace ? "on" : "off") +
                         "/workers:" + std::to_string(w);
      benchmark::RegisterBenchmark(
          name.c_str(),
          [=](benchmark::State& st) { RunServerThroughput(st, n, w, trace); })
          ->Unit(benchmark::kMillisecond)
          ->Iterations(EnvIters())
          ->UseRealTime();
    }
    std::string cold =
        "ConcurrentColdBuilds/2D-pair/workers:" + std::to_string(w);
    benchmark::RegisterBenchmark(
        cold.c_str(),
        [=](benchmark::State& st) { RunConcurrentColdBuilds(st, n, w); })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(EnvIters())
        ->UseRealTime();
  }
}

}  // namespace
}  // namespace parhc_bench

int main(int argc, char** argv) {
  parhc_bench::RegisterAll();
  benchmark::Initialize(&argc, argv);
  parhc_bench::AddMachineContext();
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
