// Loopback throughput of the networked serving layer (src/net/): one
// strict request/response client (the "single REPL client" baseline)
// versus 32 concurrent pipelined connections, both hammering the same
// warm dataset in one in-process NetServer.
//
// Scenario: a dataset is generated and fully warmed (tree, kNN@minPts,
// MR-MST, dendrogram) so every benchmark query is a cache-hit read — the
// serving layer itself is the bottleneck, not artifact builds. Then:
//   single  1 connection, 1 outstanding request (send, wait, repeat) —
//           every query pays a full loopback round trip;
//   multi   kClients=32 connections, each pipelining kWindow requests —
//           the event loop batches reads, the worker pool answers
//           concurrently under the engine's shared-lock read path.
// Counters report both rates and `speedup` (multi qps / single qps; the
// acceptance target is >= 10x at N = 1M, see README "Network serving"),
// `identical` = 1 iff every one of the ~70k responses is byte-identical
// to the single-threaded protocol-core answer (the REPL path), and
// `dropped`/`shed` from the server (both must be 0 — every request got a
// real answer). CI runs a small-N smoke via bench_server_smoke, emitting
// BENCH_server_throughput.json for the bench-regression gate.
//
// Both families run once per scheduler-pool size in WorkerMatrix()
// (1/4/all-hw, deduplicated) as `.../workers:N` rows: the 1-worker rows
// are the gated floors; multi-worker rows gate on `identical == 1` plus
// monotone non-regression of `qps_multi` (see bench/baselines/gate.json).
//
// The second family, ConcurrentColdBuilds, measures the build executor
// itself: two independent cold HDBSCAN* builds through one engine,
// serialized versus issued from two threads at once. `overlap_ratio` is
// the concurrent wall time over the slower solo build — 1.0 is perfect
// overlap, 2.0 fully serialized. One core can only interleave, so the
// < 1.6x acceptance target applies at >= 4 real cores (README
// "Multicore execution"); the gate allows the serialized worst case.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "net/protocol.h"
#include "net/server.h"

namespace parhc_bench {
namespace {

constexpr int kClients = 32;
constexpr int kWindow = 64;     ///< pipelined requests in flight per conn
constexpr int kMinPts = 16;

/// Blocking loopback client with buffered line reads.
class Client {
 public:
  explicit Client(uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    PARHC_CHECK_MSG(
        ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) == 0,
        "bench client connect failed");
  }
  ~Client() { ::close(fd_); }

  void Send(const std::string& bytes) {
    size_t off = 0;
    while (off < bytes.size()) {
      ssize_t n = ::send(fd_, bytes.data() + off, bytes.size() - off, 0);
      PARHC_CHECK_MSG(n > 0, "bench client send failed");
      off += static_cast<size_t>(n);
    }
  }

  std::string ReadLine() {
    for (;;) {
      size_t nl = buf_.find('\n', pos_);
      if (nl != std::string::npos) {
        std::string line = buf_.substr(pos_, nl + 1 - pos_);
        pos_ = nl + 1;
        // Reclaim lazily: per-line erase(0, n) would memmove the whole
        // remainder each time and dominate the measurement.
        if (pos_ >= 64 * 1024 || pos_ == buf_.size()) {
          buf_.erase(0, pos_);
          pos_ = 0;
        }
        return line;
      }
      char tmp[65536];
      ssize_t n = ::read(fd_, tmp, sizeof tmp);
      PARHC_CHECK_MSG(n > 0, "bench client read failed/eof");
      buf_.append(tmp, static_cast<size_t>(n));
    }
  }

 private:
  int fd_ = -1;
  std::string buf_;
  size_t pos_ = 0;
};

void RunServerThroughput(benchmark::State& st, size_t n, int workers) {
  SetNumWorkers(workers);
  const std::string query = "hdbscan warm " + std::to_string(kMinPts) + "\n";
  // Per-client request counts, scaled down for the CI smoke (tiny N ==
  // smoke mode; the acceptance run at N = 1M uses the full counts).
  const int single_queries = n >= 100000 ? 4000 : 1500;
  const int multi_queries_per_client = n >= 100000 ? 2000 : 400;

  ClusteringEngine engine;
  net::NetServerOptions opts;
  opts.port = 0;
  opts.workers = std::max(4u, std::thread::hardware_concurrency());
  opts.max_queued = 1 << 16;  // no load-shed: every answer must be real
  opts.max_pipelined = kWindow * 2;
  opts.show_timing = false;  // responses compared byte-for-byte
  net::NetServer server(engine, opts);
  std::string err = server.Start();
  PARHC_CHECK_MSG(err.empty(), err.c_str());
  std::thread loop([&server] { server.Run(); });

  // Warm the dataset through the shared protocol core (the REPL path) —
  // its answer is also the reference every network response must match.
  net::ProtocolOptions popts;
  popts.show_timing = false;
  net::ProtocolSession repl(engine, popts);
  std::string gen_reply =
      repl.HandleLine("gen warm 2 varden " + std::to_string(n) + " 42").out;
  PARHC_CHECK_MSG(gen_reply.rfind("ok gen", 0) == 0, gen_reply.c_str());
  repl.HandleLine("hdbscan warm " + std::to_string(kMinPts));  // build
  const std::string expected =
      repl.HandleLine("hdbscan warm " + std::to_string(kMinPts)).out;
  PARHC_CHECK_MSG(expected.rfind("ok hdbscan", 0) == 0, expected.c_str());

  for (auto _ : st) {
    // ---- single: strict request/response over one connection ----
    std::atomic<uint64_t> mismatches{0};
    Timer t;
    {
      Client c(server.port());
      for (int i = 0; i < single_queries; ++i) {
        c.Send(query);
        if (c.ReadLine() != expected) ++mismatches;
      }
    }
    double single_secs = t.Seconds();

    // ---- multi: kClients pipelined connections ----
    std::vector<std::thread> threads;
    threads.reserve(kClients);
    t.Reset();
    for (int ci = 0; ci < kClients; ++ci) {
      threads.emplace_back([&] {
        Client c(server.port());
        // Keep ~kWindow requests in flight; refill in half-window
        // batches so the client pays one send(2) per kWindow/2 replies,
        // not one per reply.
        int total = multi_queries_per_client;
        int prefill = std::min(kWindow, total);
        std::string burst;
        for (int w = 0; w < prefill; ++w) burst += query;
        c.Send(burst);
        int sent = prefill;
        for (int received = 0; received < total; ++received) {
          if (c.ReadLine() != expected) ++mismatches;
          int outstanding = sent - (received + 1);
          if (sent < total && outstanding <= kWindow / 2) {
            int batch = std::min(kWindow - outstanding, total - sent);
            c.Send(burst.substr(0, batch * query.size()));
            sent += batch;
          }
        }
      });
    }
    for (auto& th : threads) th.join();
    double multi_secs = t.Seconds();

    net::ServerStatsSnapshot stats = server.Stats();
    double qps_single = single_queries / single_secs;
    double qps_multi =
        static_cast<double>(kClients) * multi_queries_per_client /
        multi_secs;
    st.counters["qps_single"] = qps_single;
    st.counters["qps_multi"] = qps_multi;
    st.counters["speedup"] = qps_multi / qps_single;
    st.counters["identical"] = mismatches.load() == 0 ? 1 : 0;
    st.counters["dropped"] = static_cast<double>(stats.dropped);
    st.counters["shed"] = static_cast<double>(stats.shed);
    st.counters["p99_us"] = static_cast<double>(stats.p99_us);
  }
  st.counters["n"] = static_cast<double>(n);
  st.counters["clients"] = kClients;
  st.counters["workers"] = workers;
  // The speedup is hardware-bound: on one core only pipelining
  // amortization counts; the concurrent shared-lock read path needs real
  // cores to show (see README "Network serving").
  st.counters["cores"] =
      static_cast<double>(std::thread::hardware_concurrency());

  server.Shutdown();
  loop.join();
}

std::vector<double> SortedWeights(const std::vector<WeightedEdge>& edges) {
  std::vector<double> w;
  w.reserve(edges.size());
  for (const WeightedEdge& e : edges) w.push_back(e.w);
  std::sort(w.begin(), w.end());
  return w;
}

void RunConcurrentColdBuilds(benchmark::State& st, size_t n, int workers) {
  SetNumWorkers(workers);
  const auto& pts_a = GetDataset<2>("uniform", n);
  const auto& pts_b = GetDataset<2>("varden", n);
  auto request = [](const char* ds) {
    EngineRequest req;
    req.dataset = ds;
    req.type = QueryType::kHdbscan;
    req.min_pts = kMinPts;
    return req;
  };
  for (auto _ : st) {
    // Solo reference: each dataset built cold, one after the other. The
    // slower of the two is the overlap-ratio denominator, and the edge
    // weights are the answers the concurrent builds must reproduce.
    std::vector<double> ref_a, ref_b;
    double solo_secs = 0;
    Timer t;
    {
      ClusteringEngine engine;
      engine.registry().Add("a", pts_a);
      engine.registry().Add("b", pts_b);
      t.Reset();
      EngineResponse ra = engine.Run(request("a"));
      double secs_a = t.Seconds();
      t.Reset();
      EngineResponse rb = engine.Run(request("b"));
      double secs_b = t.Seconds();
      PARHC_CHECK(ra.ok && rb.ok);
      ref_a = SortedWeights(*ra.mst);
      ref_b = SortedWeights(*rb.mst);
      solo_secs = std::max(secs_a, secs_b);
    }
    // Concurrent: the same two cold builds issued from two threads into a
    // fresh engine — the executor splits the pool between them.
    ClusteringEngine engine;
    engine.registry().Add("a", pts_a);
    engine.registry().Add("b", pts_b);
    std::vector<double> conc_a;
    t.Reset();
    std::thread other([&] {
      EngineResponse r = engine.Run(request("a"));
      PARHC_CHECK(r.ok);
      conc_a = SortedWeights(*r.mst);
    });
    EngineResponse rb = engine.Run(request("b"));
    other.join();
    double conc_secs = t.Seconds();
    PARHC_CHECK(rb.ok);
    st.counters["overlap_ratio"] = conc_secs / solo_secs;
    st.counters["identical"] =
        (conc_a == ref_a && SortedWeights(*rb.mst) == ref_b) ? 1 : 0;
    st.counters["peak_builds"] =
        static_cast<double>(engine.executor().stats().peak_concurrent);
  }
  st.counters["n"] = static_cast<double>(n);
  st.counters["workers"] = workers;
  st.counters["cores"] =
      static_cast<double>(std::thread::hardware_concurrency());
}

void RegisterAll() {
  size_t n = EnvN(100000);
  for (int w : WorkerMatrix()) {
    std::string name =
        "ServerThroughput/2D-SS-varden/workers:" + std::to_string(w);
    benchmark::RegisterBenchmark(
        name.c_str(),
        [=](benchmark::State& st) { RunServerThroughput(st, n, w); })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(EnvIters())
        ->UseRealTime();
    std::string cold =
        "ConcurrentColdBuilds/2D-pair/workers:" + std::to_string(w);
    benchmark::RegisterBenchmark(
        cold.c_str(),
        [=](benchmark::State& st) { RunConcurrentColdBuilds(st, n, w); })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(EnvIters())
        ->UseRealTime();
  }
}

}  // namespace
}  // namespace parhc_bench

int main(int argc, char** argv) {
  parhc_bench::RegisterAll();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
