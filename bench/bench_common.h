// Shared benchmark infrastructure: the dataset registry (paper Section 5
// datasets and their simulated stand-ins, see DESIGN.md), environment knobs,
// and thread sweeps.
//
// Environment variables:
//   PARHC_N        base dataset size            (default 10000)
//   PARHC_MAXT     max worker count for sweeps  (default PARHC_WORKERS,
//                  else max(4, hw threads))
//   PARHC_WORKERS  scheduler pool size — also honored by every library
//                  binary via Scheduler::Get
//   PARHC_ITERS    iterations per benchmark     (default 1)
#pragma once

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdlib>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "parhc.h"
#include "util/stats.h"
#include "util/timer.h"

namespace parhc_bench {

using namespace parhc;  // NOLINT — benchmark binaries only

inline size_t EnvN(size_t dflt = 10000) {
  const char* s = std::getenv("PARHC_N");
  return s ? std::strtoull(s, nullptr, 10) : dflt;
}

inline int EnvMaxThreads() {
  const char* s = std::getenv("PARHC_MAXT");
  if (s) return std::max(1, std::atoi(s));
  if (const char* w = std::getenv("PARHC_WORKERS")) {
    return std::max(1, std::atoi(w));
  }
  unsigned hw = std::thread::hardware_concurrency();
  return std::max(4u, hw);  // demonstrate the sweep even on small machines
}

/// Worker counts for the multicore build-executor matrix: 1, 4, and all
/// hardware threads (deduplicated, sorted). The 1-worker row is the gated
/// floor; multi-worker rows gate on identical results plus monotone
/// non-regression (ci/check_bench_regression.py).
inline std::vector<int> WorkerMatrix() {
  int maxt = EnvMaxThreads();
  std::vector<int> out = {1};
  if (maxt >= 4) out.push_back(4);
  if (maxt != 1 && maxt != 4) out.push_back(maxt);
  std::sort(out.begin(), out.end());
  return out;
}

inline int EnvIters() {
  const char* s = std::getenv("PARHC_ITERS");
  return s ? std::max(1, std::atoi(s)) : 1;
}

/// ISA capability of this process's distance kernels (geometry/distance.h):
/// 1 when the AVX2+FMA kernels are active, 0 for the scalar fallback (no
/// AVX2, -DPARHC_SIMD=OFF, or PARHC_FORCE_SCALAR=1). Emitted into every
/// BENCH_*.json — as file context by AddMachineContext and as a per-row
/// counter where a gate depends on it — so gate.json bounds can declare
/// "requires_cpu_features": N and be skipped on machines below that level
/// instead of failing (ci/check_bench_regression.py).
inline double CpuFeaturesCounter() {
  return simd::ActiveLevel() == simd::IsaLevel::kAvx2Fma ? 1.0 : 0.0;
}

/// Stamps machine capability into the emitted JSON's context block; every
/// bench main calls this right after benchmark::Initialize.
inline void AddMachineContext() {
  benchmark::AddCustomContext("cpu_features",
                              CpuFeaturesCounter() >= 1.0 ? "1" : "0");
  benchmark::AddCustomContext("simd_level",
                              simd::LevelName(simd::ActiveLevel()));
}

/// Threads for the scaling figures: 1, 2, 4, ..., maxt.
inline std::vector<int> ThreadSweep() {
  std::vector<int> out;
  int maxt = EnvMaxThreads();
  for (int t = 1; t < maxt; t *= 2) out.push_back(t);
  out.push_back(maxt);
  return out;
}

/// One evaluation dataset: a paper dataset or its simulated stand-in.
struct DatasetSpec {
  const char* label;  ///< paper-style label used in benchmark names
  int dim;
  const char* kind;   ///< uniform | varden | levy | gauss
};

/// The paper's Section 5 dataset suite (real sets replaced by matched
/// synthetic stand-ins; see DESIGN.md substitution 2).
inline const std::vector<DatasetSpec>& StandardDatasets() {
  static const std::vector<DatasetSpec> kSets = {
      {"2D-UniformFill", 2, "uniform"},  {"3D-UniformFill", 3, "uniform"},
      {"5D-UniformFill", 5, "uniform"},  {"7D-UniformFill", 7, "uniform"},
      {"2D-SS-varden", 2, "varden"},     {"3D-SS-varden", 3, "varden"},
      {"5D-SS-varden", 5, "varden"},     {"7D-SS-varden", 7, "varden"},
      {"3D-GeoLife-sim", 3, "levy"},     {"7D-Household-sim", 7, "gauss"},
      {"10D-HT-sim", 10, "gauss"},       {"16D-CHEM-sim", 16, "gauss"},
  };
  return kSets;
}

/// A small representative subset for the more expensive sweeps.
inline const std::vector<DatasetSpec>& CoreDatasets() {
  static const std::vector<DatasetSpec> kSets = {
      {"2D-UniformFill", 2, "uniform"},
      {"5D-UniformFill", 5, "uniform"},
      {"3D-SS-varden", 3, "varden"},
      {"3D-GeoLife-sim", 3, "levy"},
  };
  return kSets;
}

template <int D>
const std::vector<Point<D>>& GetDataset(const std::string& kind, size_t n) {
  static std::map<std::string, std::vector<Point<D>>> cache;
  std::string key = kind + "/" + std::to_string(n);
  auto it = cache.find(key);
  if (it != cache.end()) return it->second;
  std::vector<Point<D>> pts;
  if (kind == "uniform") {
    pts = UniformFill<D>(n, 1);
  } else if (kind == "varden") {
    pts = SeedSpreaderVarden<D>(n, 1);
  } else if (kind == "levy") {
    pts = SkewedLevy<D>(n, 1);
  } else {
    pts = ClusteredGaussians<D>(n, 1);
  }
  return cache.emplace(key, std::move(pts)).first->second;
}

/// Invokes `fn` with the dataset as a `const std::vector<Point<D>>&` of the
/// spec's dimension.
template <typename Fn>
void DispatchDataset(const DatasetSpec& ds, size_t n, Fn&& fn) {
  switch (ds.dim) {
    case 2:
      fn(GetDataset<2>(ds.kind, n));
      break;
    case 3:
      fn(GetDataset<3>(ds.kind, n));
      break;
    case 5:
      fn(GetDataset<5>(ds.kind, n));
      break;
    case 7:
      fn(GetDataset<7>(ds.kind, n));
      break;
    case 10:
      fn(GetDataset<10>(ds.kind, n));
      break;
    case 16:
      fn(GetDataset<16>(ds.kind, n));
      break;
    default:
      PARHC_CHECK_MSG(false, "unsupported dimension");
  }
}

/// EMST method table shared by several benchmarks.
struct EmstMethod {
  const char* name;
  EmstAlgorithm algo;
  int max_dim;  ///< skip datasets above this dimension (paper's "-" cells)
};

inline const std::vector<EmstMethod>& EmstMethods() {
  static const std::vector<EmstMethod> kMethods = {
      {"EMST-Naive", EmstAlgorithm::kNaive, 10},
      {"EMST-GFK", EmstAlgorithm::kGfk, 10},
      {"EMST-MemoGFK", EmstAlgorithm::kMemoGfk, 16},
      {"EMST-Boruvka", EmstAlgorithm::kBoruvka, 16},
  };
  return kMethods;
}

/// Runs an EMST method on any-dimension data (Delaunay handled separately).
template <int D>
std::vector<WeightedEdge> RunEmst(const std::vector<Point<D>>& pts,
                                  EmstAlgorithm algo,
                                  PhaseBreakdown* phases = nullptr) {
  return Emst(pts, algo, phases);
}

}  // namespace parhc_bench
