// Microbenchmarks for the parallel substrate (not a paper artifact; sanity
// checks that the primitives underlying every algorithm behave sensibly).
#include "bench_common.h"

#include <numeric>

#include "parallel/semisort.h"
#include "parallel/sort.h"

namespace parhc_bench {
namespace {

void BM_Scan(benchmark::State& st) {
  size_t n = static_cast<size_t>(st.range(0));
  SetNumWorkers(EnvMaxThreads());
  std::vector<int64_t> base(n, 1);
  for (auto _ : st) {
    std::vector<int64_t> a = base;
    int64_t total = ScanExclusive(a.data(), n, int64_t{0},
                                  [](int64_t x, int64_t y) { return x + y; });
    benchmark::DoNotOptimize(total);
  }
  st.SetItemsProcessed(st.iterations() * n);
}
BENCHMARK(BM_Scan)->Arg(1 << 16)->Arg(1 << 20)->Unit(benchmark::kMillisecond);

void BM_Filter(benchmark::State& st) {
  size_t n = static_cast<size_t>(st.range(0));
  SetNumWorkers(EnvMaxThreads());
  std::vector<uint64_t> a(n);
  std::iota(a.begin(), a.end(), 0);
  for (auto _ : st) {
    auto out = Filter(a, [](uint64_t x) { return (x & 7) == 0; });
    benchmark::DoNotOptimize(out.data());
  }
  st.SetItemsProcessed(st.iterations() * n);
}
BENCHMARK(BM_Filter)->Arg(1 << 20)->Unit(benchmark::kMillisecond);

void BM_ParallelSort(benchmark::State& st) {
  size_t n = static_cast<size_t>(st.range(0));
  SetNumWorkers(EnvMaxThreads());
  std::vector<uint64_t> base(n);
  std::mt19937_64 rng(1);
  for (auto& x : base) x = rng();
  for (auto _ : st) {
    std::vector<uint64_t> a = base;
    ParallelSort(a);
    benchmark::DoNotOptimize(a.data());
  }
  st.SetItemsProcessed(st.iterations() * n);
}
BENCHMARK(BM_ParallelSort)
    ->Arg(1 << 16)
    ->Arg(1 << 20)
    ->Unit(benchmark::kMillisecond);

void BM_SemiSort(benchmark::State& st) {
  size_t n = static_cast<size_t>(st.range(0));
  SetNumWorkers(EnvMaxThreads());
  std::vector<uint32_t> base(n);
  std::mt19937_64 rng(2);
  for (auto& x : base) x = static_cast<uint32_t>(rng() % (n / 64 + 1));
  for (auto _ : st) {
    auto [items, starts] = SemiSort(base, [](uint32_t x) { return x; });
    benchmark::DoNotOptimize(items.data());
    benchmark::DoNotOptimize(starts.data());
  }
  st.SetItemsProcessed(st.iterations() * n);
}
BENCHMARK(BM_SemiSort)->Arg(1 << 18)->Unit(benchmark::kMillisecond);

void BM_KdTreeBuild(benchmark::State& st) {
  size_t n = static_cast<size_t>(st.range(0));
  SetNumWorkers(EnvMaxThreads());
  const auto& pts = GetDataset<3>("uniform", n);
  for (auto _ : st) {
    KdTree<3> tree(pts, 1);
    benchmark::DoNotOptimize(tree.root());
  }
  st.SetItemsProcessed(st.iterations() * n);
}
BENCHMARK(BM_KdTreeBuild)->Arg(1 << 17)->Unit(benchmark::kMillisecond);

void BM_Knn10(benchmark::State& st) {
  size_t n = static_cast<size_t>(st.range(0));
  SetNumWorkers(EnvMaxThreads());
  const auto& pts = GetDataset<3>("uniform", n);
  KdTree<3> tree(pts, 8);
  for (auto _ : st) {
    auto cd = KthNeighborDistances(tree, 10);
    benchmark::DoNotOptimize(cd.data());
  }
  st.SetItemsProcessed(st.iterations() * n);
}
BENCHMARK(BM_Knn10)->Arg(1 << 16)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace parhc_bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  parhc_bench::AddMachineContext();
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
