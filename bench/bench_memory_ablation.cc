// Memory ablation (Section 5, "MemoGFK Memory Usage"): materialized
// well-separated pairs — total and peak-live — for GFK vs MemoGFK (EMST)
// and GanTao vs MemoGFK (HDBSCAN*). The paper reports up to 10x memory
// savings for MemoGFK and 2.5-10.29x fewer pairs for the new HDBSCAN*
// well-separation.
#include "bench_common.h"

namespace parhc_bench {
namespace {

void RegisterAll() {
  size_t n = EnvN();
  int maxt = EnvMaxThreads();
  for (const DatasetSpec& ds : StandardDatasets()) {
    for (const EmstMethod& m : EmstMethods()) {
      if (m.algo == EmstAlgorithm::kBoruvka) continue;  // no WSPD
      if (ds.dim > m.max_dim) continue;
      std::string name =
          std::string("Memory/") + m.name + "/" + ds.label;
      benchmark::RegisterBenchmark(
          name.c_str(),
          [=](benchmark::State& st) {
            DispatchDataset(ds, n, [&](const auto& pts) {
              SetNumWorkers(maxt);
              AlgoCounterSnapshot last;
              for (auto _ : st) {
                // Per-iteration epoch: the table reports one run's counts
                // (kResetPeak is safe — the bench owns the process).
                StatsEpoch epoch(StatsEpoch::kResetPeak);
                benchmark::DoNotOptimize(RunEmst(pts, m.algo).data());
                last = epoch.Delta();
              }
              st.counters["pairs_total"] =
                  static_cast<double>(last.wspd_pairs_materialized);
              st.counters["pairs_peak"] =
                  static_cast<double>(last.wspd_pairs_peak);
              st.counters["bccp_calls"] =
                  static_cast<double>(last.bccp_computed);
            });
          })
          ->Unit(benchmark::kMillisecond)
          ->Iterations(EnvIters());
    }
    for (auto [vname, v] :
         {std::pair{"HDBSCAN-MemoGFK", HdbscanVariant::kMemoGfk},
          std::pair{"HDBSCAN-GanTao", HdbscanVariant::kGanTao}}) {
      std::string name = std::string("Memory/") + vname + "/" + ds.label;
      benchmark::RegisterBenchmark(
          name.c_str(),
          [=, v = v](benchmark::State& st) {
            DispatchDataset(ds, n, [&](const auto& pts) {
              SetNumWorkers(maxt);
              AlgoCounterSnapshot last;
              for (auto _ : st) {
                StatsEpoch epoch(StatsEpoch::kResetPeak);
                auto r = HdbscanMst(pts, 10, v);
                benchmark::DoNotOptimize(r.mst.data());
                last = epoch.Delta();
              }
              st.counters["pairs_total"] =
                  static_cast<double>(last.wspd_pairs_materialized);
              st.counters["pairs_peak"] =
                  static_cast<double>(last.wspd_pairs_peak);
            });
          })
          ->Unit(benchmark::kMillisecond)
          ->Iterations(EnvIters());
    }
  }
}

}  // namespace
}  // namespace parhc_bench

int main(int argc, char** argv) {
  parhc_bench::RegisterAll();
  benchmark::Initialize(&argc, argv);
  parhc_bench::AddMachineContext();
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
