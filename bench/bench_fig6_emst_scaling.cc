// Figure 6: EMST speedup vs worker count. One benchmark per
// (method, dataset, workers); the speedup_vs_1w counter divides the
// method's 1-worker time (measured first, registration order) by the
// current run's time.
#include "bench_common.h"

namespace parhc_bench {
namespace {

std::map<std::string, double>& BaselineTimes() {
  static std::map<std::string, double> t1;
  return t1;
}

void RegisterAll() {
  size_t n = EnvN();
  for (const DatasetSpec& ds : CoreDatasets()) {
    for (const EmstMethod& m : EmstMethods()) {
      if (ds.dim > m.max_dim) continue;
      std::string base = std::string(m.name) + "/" + ds.label;
      for (int threads : ThreadSweep()) {
        std::string name =
            "Fig6/" + base + "/workers:" + std::to_string(threads);
        benchmark::RegisterBenchmark(
            name.c_str(),
            [=](benchmark::State& st) {
              DispatchDataset(ds, n, [&](const auto& pts) {
                SetNumWorkers(threads);
                double secs = 0;
                for (auto _ : st) {
                  Timer t;
                  benchmark::DoNotOptimize(RunEmst(pts, m.algo).data());
                  secs = t.Seconds();
                }
                if (threads == 1) BaselineTimes()[base] = secs;
                auto it = BaselineTimes().find(base);
                if (it != BaselineTimes().end()) {
                  st.counters["speedup_vs_1w"] = it->second / secs;
                }
                st.counters["workers"] = threads;
              });
            })
            ->Unit(benchmark::kMillisecond)
            ->Iterations(EnvIters());
      }
    }
  }
}

}  // namespace
}  // namespace parhc_bench

int main(int argc, char** argv) {
  parhc_bench::RegisterAll();
  benchmark::Initialize(&argc, argv);
  parhc_bench::AddMachineContext();
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
