// Figure 7: HDBSCAN* MST + dendrogram speedup vs worker count
// (minPts = 10), for both exact variants.
#include "bench_common.h"

namespace parhc_bench {
namespace {

std::map<std::string, double>& BaselineTimes() {
  static std::map<std::string, double> t1;
  return t1;
}

void RegisterAll() {
  size_t n = EnvN();
  struct Variant {
    const char* name;
    HdbscanVariant v;
  } variants[] = {
      {"HDBSCAN-MemoGFK", HdbscanVariant::kMemoGfk},
      {"HDBSCAN-GanTao", HdbscanVariant::kGanTao},
  };
  for (const DatasetSpec& ds : CoreDatasets()) {
    for (const Variant& var : variants) {
      std::string base = std::string(var.name) + "/" + ds.label;
      for (int threads : ThreadSweep()) {
        std::string name =
            "Fig7/" + base + "/workers:" + std::to_string(threads);
        benchmark::RegisterBenchmark(
            name.c_str(),
            [=](benchmark::State& st) {
              DispatchDataset(ds, n, [&](const auto& pts) {
                SetNumWorkers(threads);
                double secs = 0;
                for (auto _ : st) {
                  Timer t;
                  auto r = Hdbscan(pts, 10, var.v);
                  benchmark::DoNotOptimize(r.mst.data());
                  secs = t.Seconds();
                }
                if (threads == 1) BaselineTimes()[base] = secs;
                auto it = BaselineTimes().find(base);
                if (it != BaselineTimes().end()) {
                  st.counters["speedup_vs_1w"] = it->second / secs;
                }
                st.counters["workers"] = threads;
              });
            })
            ->Unit(benchmark::kMillisecond)
            ->Iterations(EnvIters());
      }
    }
  }
}

}  // namespace
}  // namespace parhc_bench

int main(int argc, char** argv) {
  parhc_bench::RegisterAll();
  benchmark::Initialize(&argc, argv);
  parhc_bench::AddMachineContext();
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
