// Table 2: self-relative speedup of every method on all workers vs one
// worker. Each benchmark measures both configurations internally and
// reports t1_ms, tp_ms, and self_speedup counters; the timed iteration is
// the all-workers run.
#include "bench_common.h"

namespace parhc_bench {
namespace {

template <typename RunFn>
void MeasureSpeedup(benchmark::State& st, int maxt, RunFn run) {
  SetNumWorkers(1);
  Timer t;
  run();
  double t1 = t.Seconds();
  SetNumWorkers(maxt);
  double tp = 0;
  for (auto _ : st) {
    Timer tt;
    run();
    tp = tt.Seconds();
  }
  st.counters["t1_ms"] = t1 * 1e3;
  st.counters["tp_ms"] = tp * 1e3;
  st.counters["self_speedup"] = t1 / tp;
  st.counters["workers"] = maxt;
}

void RegisterAll() {
  size_t n = EnvN();
  int maxt = EnvMaxThreads();
  for (const DatasetSpec& ds : CoreDatasets()) {
    for (const EmstMethod& m : EmstMethods()) {
      if (ds.dim > m.max_dim) continue;
      std::string name =
          std::string("Table2/") + m.name + "/" + ds.label;
      benchmark::RegisterBenchmark(
          name.c_str(),
          [=](benchmark::State& st) {
            DispatchDataset(ds, n, [&](const auto& pts) {
              MeasureSpeedup(st, maxt, [&] {
                benchmark::DoNotOptimize(RunEmst(pts, m.algo).data());
              });
            });
          })
          ->Unit(benchmark::kMillisecond)
          ->Iterations(EnvIters());
    }
    for (auto [vname, v] :
         {std::pair{"HDBSCAN-MemoGFK", HdbscanVariant::kMemoGfk},
          std::pair{"HDBSCAN-GanTao", HdbscanVariant::kGanTao}}) {
      std::string name = std::string("Table2/") + vname + "/" + ds.label;
      benchmark::RegisterBenchmark(
          name.c_str(),
          [=, v = v](benchmark::State& st) {
            DispatchDataset(ds, n, [&](const auto& pts) {
              MeasureSpeedup(st, maxt, [&] {
                benchmark::DoNotOptimize(Hdbscan(pts, 10, v).mst.data());
              });
            });
          })
          ->Unit(benchmark::kMillisecond)
          ->Iterations(EnvIters());
    }
  }
}

}  // namespace
}  // namespace parhc_bench

int main(int argc, char** argv) {
  parhc_bench::RegisterAll();
  benchmark::Initialize(&argc, argv);
  parhc_bench::AddMachineContext();
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
