// Batch-dynamic ingestion (src/dynamic/): amortized insert cost under
// incremental EMST maintenance versus full recomputation.
//
// Scenario: a base dataset of N points with a warm forest EMST, then a
// stream of insert batches of 1% of N each. Two strategies process the
// same stream:
//   incremental  the shard forest: each batch pays its own shard build +
//                shard EMST, one cross BCCP/WSPD pass per surviving shard,
//                and a Kruskal over the cached candidate edges — surviving
//                shard EMSTs are reused;
//   rebuild      the static path: a full kd-tree + MemoGFK EMST build over
//                all points after every batch (what PR 2's engine had to
//                do, since registry datasets were immutable).
// Each DynamicIngest benchmark runs both and reports secs_per_batch for
// the two strategies plus `speedup` (rebuild / incremental amortized
// cost). The acceptance target is >= 5x at N = 1M, 2D, 1% batches (see
// README "Dynamic datasets" for measured numbers). CI runs a small-N smoke
// via the bench_dynamic_smoke target, emitting BENCH_dynamic_ingest.json.
#include "bench_common.h"
#include "dynamic/artifacts.h"

namespace parhc_bench {
namespace {

constexpr int kBatches = 5;

template <int D>
std::vector<Point<D>> Gen(const std::string& kind, size_t n, uint64_t seed) {
  if (kind == "uniform") return UniformFill<D>(n, seed);
  return SeedSpreaderVarden<D>(n, seed);
}

/// Seconds per batch for the full-rebuild strategy over the stream.
template <int D>
double RebuildSecsPerBatch(const std::vector<Point<D>>& base,
                           const std::vector<std::vector<Point<D>>>& batches) {
  std::vector<Point<D>> all(base);
  Timer t;
  double total = 0;
  for (const auto& batch : batches) {
    all.insert(all.end(), batch.begin(), batch.end());
    t.Reset();
    auto mst = EmstMemoGfk(all);
    total += t.Seconds();
    benchmark::DoNotOptimize(mst.data());
  }
  return total / kBatches;
}

/// Seconds per batch for the incremental shard forest (the EMST is
/// re-answered after every insert), starting from a warm base EMST.
template <int D>
double IncrementalSecsPerBatch(
    const std::vector<Point<D>>& base,
    const std::vector<std::vector<Point<D>>>& batches) {
  DynamicArtifacts<D> dyn;
  dyn.InsertBatch(base);
  EngineRequest req;
  req.type = QueryType::kEmst;
  EngineResponse warm;
  PARHC_CHECK(dyn.Answer(req, /*allow_build=*/true, &warm) && warm.ok);
  Timer t;
  double total = 0;
  for (const auto& batch : batches) {
    t.Reset();
    dyn.InsertBatch(batch);
    EngineResponse r;
    PARHC_CHECK(dyn.Answer(req, /*allow_build=*/true, &r) && r.ok);
    total += t.Seconds();
    benchmark::DoNotOptimize(r.mst);
  }
  return total / kBatches;
}

template <int D>
void RunIngest(benchmark::State& st, const std::string& kind, size_t n,
               int workers) {
  SetNumWorkers(workers);
  std::vector<Point<D>> base = Gen<D>(kind, n, 1);
  size_t batch_n = std::max<size_t>(1, n / 100);
  std::vector<std::vector<Point<D>>> batches(kBatches);
  for (int b = 0; b < kBatches; ++b) {
    batches[b] = Gen<D>(kind, batch_n, 1000 + b);
  }
  for (auto _ : st) {
    double inc = IncrementalSecsPerBatch(base, batches);
    double rebuild = RebuildSecsPerBatch(base, batches);
    st.counters["incremental_secs_per_batch"] = inc;
    st.counters["rebuild_secs_per_batch"] = rebuild;
    st.counters["speedup"] = rebuild / inc;
  }
  st.counters["base_n"] = static_cast<double>(n);
  st.counters["batch_n"] = static_cast<double>(batch_n);
  st.counters["batches"] = kBatches;
  st.counters["workers"] = workers;
}

void RegisterAll() {
  size_t n = EnvN(100000);
  int maxt = EnvMaxThreads();
  benchmark::RegisterBenchmark(
      "DynamicIngest/2D-UniformFill",
      [=](benchmark::State& st) { RunIngest<2>(st, "uniform", n, maxt); })
      ->Unit(benchmark::kMillisecond)
      ->Iterations(EnvIters());
  benchmark::RegisterBenchmark(
      "DynamicIngest/3D-SS-varden",
      [=](benchmark::State& st) { RunIngest<3>(st, "varden", n, maxt); })
      ->Unit(benchmark::kMillisecond)
      ->Iterations(EnvIters());
}

}  // namespace
}  // namespace parhc_bench

int main(int argc, char** argv) {
  parhc_bench::RegisterAll();
  benchmark::Initialize(&argc, argv);
  parhc_bench::AddMachineContext();
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
