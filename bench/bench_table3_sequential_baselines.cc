// Table 3: sequential baseline comparison. The paper compares its 1-thread
// EMST-MemoGFK against mlpack's Dual-Tree Boruvka (0.89-4.17x faster,
// 2.44x average); mlpack is unavailable offline, so our kd-tree Boruvka
// (EMST-Boruvka, the same algorithm family) is the stand-in. Both run on
// one worker; the counter memogfk_speedup is Boruvka time / MemoGFK time.
#include "bench_common.h"

namespace parhc_bench {
namespace {

void RegisterAll() {
  size_t n = EnvN();
  for (const DatasetSpec& ds : StandardDatasets()) {
    std::string name = std::string("Table3/seq-baseline/") + ds.label;
    benchmark::RegisterBenchmark(
        name.c_str(),
        [=](benchmark::State& st) {
          DispatchDataset(ds, n, [&](const auto& pts) {
            SetNumWorkers(1);
            Timer t;
            benchmark::DoNotOptimize(
                RunEmst(pts, EmstAlgorithm::kBoruvka).data());
            double t_boruvka = t.Seconds();
            double t_memogfk = 0;
            for (auto _ : st) {
              Timer tt;
              benchmark::DoNotOptimize(
                  RunEmst(pts, EmstAlgorithm::kMemoGfk).data());
              t_memogfk = tt.Seconds();
            }
            st.counters["boruvka_ms"] = t_boruvka * 1e3;
            st.counters["memogfk_ms"] = t_memogfk * 1e3;
            st.counters["memogfk_speedup"] = t_boruvka / t_memogfk;
          });
        })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(EnvIters());
  }
}

}  // namespace
}  // namespace parhc_bench

int main(int argc, char** argv) {
  parhc_bench::RegisterAll();
  benchmark::Initialize(&argc, argv);
  parhc_bench::AddMachineContext();
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
