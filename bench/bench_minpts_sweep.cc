// minPts sensitivity (Section 5) and the engine's memoized counterpart.
//
// The paper reports "just a moderate increase in the running time for
// increasing minPts" over 10..50; the first family sweeps HDBSCAN*-MemoGFK
// across minPts from scratch as before. The second family runs the same
// sweep twice per dataset so the emitted BENCH_minpts_sweep.json has a
// cold and a cached column:
//   MinPtsSweepCold/*    five independent Hdbscan() calls (tree + kNN +
//                        MST + dendrogram each time);
//   MinPtsSweepCached/*  the same five queries through a ClusteringEngine
//                        warmed by one minPts=50 query, so the sweep reuses
//                        the tree, the kNN@50 prefix matrix (core distances
//                        for every smaller minPts are derived columns), and
//                        the minPts=50 clustering — only the per-minPts
//                        MST + dendrogram rebuilds remain.
// The cached/cold ratio is the engine's reuse win (>= 3x on 1M uniform 2D
// points single-threaded; see README "Serving layer").
//
// The cold/cached family runs once per scheduler-pool size in
// WorkerMatrix() (1/4/all-hw, deduplicated) as `.../workers:N` rows. The
// 1-worker rows are the gated wall-time floors; multi-worker rows gate on
// the cached sweep's `identical` flag (the memoized engine path answers
// exactly what the cold path answers at that worker count) and monotone
// non-regression of real_time (bench/baselines/gate.json).
#include <algorithm>

#include "bench_common.h"

namespace parhc_bench {
namespace {

const std::vector<int>& SweepMinPts() {
  static const std::vector<int> kSweep = {10, 20, 30, 40, 50};
  return kSweep;
}

void RegisterPerMinPts() {
  size_t n = EnvN();
  int maxt = EnvMaxThreads();
  std::vector<DatasetSpec> sets = {
      {"2D-UniformFill", 2, "uniform"},
      {"3D-SS-varden", 3, "varden"},
      {"7D-Household-sim", 7, "gauss"},
  };
  for (const DatasetSpec& ds : sets) {
    for (int min_pts : SweepMinPts()) {
      std::string name = std::string("MinPtsSweep/") + ds.label +
                         "/minPts:" + std::to_string(min_pts);
      benchmark::RegisterBenchmark(
          name.c_str(),
          [=](benchmark::State& st) {
            DispatchDataset(ds, n, [&](const auto& pts) {
              SetNumWorkers(maxt);
              for (auto _ : st) {
                auto r = Hdbscan(pts, min_pts);
                benchmark::DoNotOptimize(r.mst.data());
              }
              st.counters["minPts"] = min_pts;
              st.counters["workers"] = maxt;
            });
          })
          ->Unit(benchmark::kMillisecond)
          ->Iterations(EnvIters());
    }
  }
}

std::vector<double> SortedWeights(const std::vector<WeightedEdge>& edges) {
  std::vector<double> w;
  w.reserve(edges.size());
  for (const WeightedEdge& e : edges) w.push_back(e.w);
  std::sort(w.begin(), w.end());
  return w;
}

void RegisterColdVsCached() {
  size_t n = EnvN();
  std::vector<DatasetSpec> sets = {
      {"2D-UniformFill", 2, "uniform"},
      {"3D-SS-varden", 3, "varden"},
  };
  for (const DatasetSpec& ds : sets) {
    for (int workers : WorkerMatrix()) {
      std::string cold = std::string("MinPtsSweepCold/") + ds.label +
                         "/workers:" + std::to_string(workers);
      benchmark::RegisterBenchmark(
          cold.c_str(),
          [=](benchmark::State& st) {
            DispatchDataset(ds, n, [&](const auto& pts) {
              SetNumWorkers(workers);
              for (auto _ : st) {
                for (int min_pts : SweepMinPts()) {
                  auto r = Hdbscan(pts, min_pts);
                  benchmark::DoNotOptimize(r.mst.data());
                }
              }
              st.counters["sweep_len"] = SweepMinPts().size();
              st.counters["workers"] = workers;
            });
          })
          ->Unit(benchmark::kMillisecond)
          ->Iterations(EnvIters());

      std::string cached = std::string("MinPtsSweepCached/") + ds.label +
                           "/workers:" + std::to_string(workers);
      benchmark::RegisterBenchmark(
          cached.c_str(),
          [=](benchmark::State& st) {
            DispatchDataset(ds, n, [&](const auto& pts) {
              SetNumWorkers(workers);
              for (auto _ : st) {
                st.PauseTiming();
                // Warm outside the measurement: one query at the sweep's
                // largest minPts computes the tree + kNN@50 prefix matrix
                // (and caches the minPts=50 clustering, as any real
                // serving warm-up would).
                ClusteringEngine engine;
                engine.registry().Add("bench", pts);
                EngineRequest req;
                req.dataset = "bench";
                req.type = QueryType::kHdbscan;
                req.min_pts = SweepMinPts().back();
                EngineResponse warm = engine.Run(req);
                PARHC_CHECK(warm.ok);
                st.ResumeTiming();
                for (int min_pts : SweepMinPts()) {
                  req.min_pts = min_pts;
                  EngineResponse r = engine.Run(req);
                  benchmark::DoNotOptimize(r.mst);
                  PARHC_CHECK(r.ok);
                }
              }
              // Outside the measurement: the memoized sweep must answer
              // exactly what the cold path answers at this worker count.
              ClusteringEngine engine;
              engine.registry().Add("bench", pts);
              EngineRequest req;
              req.dataset = "bench";
              req.type = QueryType::kHdbscan;
              req.min_pts = SweepMinPts().back();
              PARHC_CHECK(engine.Run(req).ok);
              bool identical = true;
              for (int min_pts : SweepMinPts()) {
                req.min_pts = min_pts;
                EngineResponse r = engine.Run(req);
                PARHC_CHECK(r.ok);
                auto direct = Hdbscan(pts, min_pts);
                identical = identical &&
                            SortedWeights(*r.mst) == SortedWeights(direct.mst);
              }
              st.counters["identical"] = identical ? 1 : 0;
              st.counters["sweep_len"] = SweepMinPts().size();
              st.counters["warm_knn_k"] = SweepMinPts().back();
              st.counters["workers"] = workers;
            });
          })
          ->Unit(benchmark::kMillisecond)
          ->Iterations(EnvIters());
    }
  }
}

void RegisterAll() {
  RegisterPerMinPts();
  RegisterColdVsCached();
}

}  // namespace
}  // namespace parhc_bench

int main(int argc, char** argv) {
  parhc_bench::RegisterAll();
  benchmark::Initialize(&argc, argv);
  parhc_bench::AddMachineContext();
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
