// minPts sensitivity (Section 5): the paper reports "just a moderate
// increase in the running time for increasing minPts" over 10..50.
// Sweeps HDBSCAN*-MemoGFK across minPts on representative datasets.
#include "bench_common.h"

namespace parhc_bench {
namespace {

void RegisterAll() {
  size_t n = EnvN();
  int maxt = EnvMaxThreads();
  std::vector<DatasetSpec> sets = {
      {"2D-UniformFill", 2, "uniform"},
      {"3D-SS-varden", 3, "varden"},
      {"7D-Household-sim", 7, "gauss"},
  };
  for (const DatasetSpec& ds : sets) {
    for (int min_pts : {10, 20, 30, 40, 50}) {
      std::string name = std::string("MinPtsSweep/") + ds.label +
                         "/minPts:" + std::to_string(min_pts);
      benchmark::RegisterBenchmark(
          name.c_str(),
          [=](benchmark::State& st) {
            DispatchDataset(ds, n, [&](const auto& pts) {
              SetNumWorkers(maxt);
              for (auto _ : st) {
                auto r = Hdbscan(pts, min_pts);
                benchmark::DoNotOptimize(r.mst.data());
              }
              st.counters["minPts"] = min_pts;
            });
          })
          ->Unit(benchmark::kMillisecond)
          ->Iterations(EnvIters());
    }
  }
}

}  // namespace
}  // namespace parhc_bench

int main(int argc, char** argv) {
  parhc_bench::RegisterAll();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
