// Figure 8: per-phase decomposition of EMST and HDBSCAN* construction on
// all workers — build-tree / core-dist / wspd / kruskal / dendrogram /
// delaunay, reported as *_ms counters (the paper's stacked bars).
#include "bench_common.h"

#include "emst/emst_delaunay.h"

namespace parhc_bench {
namespace {

void ReportPhases(benchmark::State& st, const PhaseBreakdown& ph) {
  st.counters["build_tree_ms"] = ph.build_tree * 1e3;
  st.counters["core_dist_ms"] = ph.core_dist * 1e3;
  st.counters["wspd_ms"] = ph.wspd * 1e3;
  st.counters["kruskal_ms"] = ph.kruskal * 1e3;
  st.counters["delaunay_ms"] = ph.delaunay * 1e3;
  st.counters["dendrogram_ms"] = ph.dendrogram * 1e3;
}

void RegisterAll() {
  size_t n = EnvN();
  int maxt = EnvMaxThreads();
  for (const DatasetSpec& ds : CoreDatasets()) {
    for (const EmstMethod& m : EmstMethods()) {
      if (ds.dim > m.max_dim) continue;
      std::string name =
          std::string("Fig8/") + m.name + "/" + ds.label;
      benchmark::RegisterBenchmark(
          name.c_str(),
          [=](benchmark::State& st) {
            DispatchDataset(ds, n, [&](const auto& pts) {
              SetNumWorkers(maxt);
              PhaseBreakdown ph;
              for (auto _ : st) {
                ph = PhaseBreakdown{};
                benchmark::DoNotOptimize(RunEmst(pts, m.algo, &ph).data());
              }
              ReportPhases(st, ph);
            });
          })
          ->Unit(benchmark::kMillisecond)
          ->Iterations(EnvIters());
    }
    for (auto [vname, v] :
         {std::pair{"HDBSCAN-MemoGFK", HdbscanVariant::kMemoGfk},
          std::pair{"HDBSCAN-GanTao", HdbscanVariant::kGanTao}}) {
      std::string name = std::string("Fig8/") + vname + "/" + ds.label;
      benchmark::RegisterBenchmark(
          name.c_str(),
          [=, v = v](benchmark::State& st) {
            DispatchDataset(ds, n, [&](const auto& pts) {
              SetNumWorkers(maxt);
              PhaseBreakdown ph;
              for (auto _ : st) {
                ph = PhaseBreakdown{};
                auto r = Hdbscan(pts, 10, v, &ph);
                benchmark::DoNotOptimize(r.mst.data());
              }
              ReportPhases(st, ph);
            });
          })
          ->Unit(benchmark::kMillisecond)
          ->Iterations(EnvIters());
    }
  }
  // EMST-Delaunay decomposition (2D panels of Figure 8).
  std::string name = "Fig8/EMST-Delaunay/2D-UniformFill";
  benchmark::RegisterBenchmark(
      name.c_str(),
      [=](benchmark::State& st) {
        const auto& pts = GetDataset<2>("uniform", n);
        SetNumWorkers(maxt);
        PhaseBreakdown ph;
        for (auto _ : st) {
          ph = PhaseBreakdown{};
          benchmark::DoNotOptimize(EmstDelaunay(pts, &ph).data());
        }
        ReportPhases(st, ph);
      })
      ->Unit(benchmark::kMillisecond)
      ->Iterations(EnvIters());
}

}  // namespace
}  // namespace parhc_bench

int main(int argc, char** argv) {
  parhc_bench::RegisterAll();
  benchmark::Initialize(&argc, argv);
  parhc_bench::AddMachineContext();
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
