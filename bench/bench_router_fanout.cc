// Router-tier benchmarks (src/cluster/): replica fan-out throughput and
// distributed-merge correctness/cost against a single-node engine.
//
// RouterFanout/replicas:R — R in-process parhc_netserver workers behind
// one router front-end, all serving the same replicated warm dataset
// (gen fans out to every worker; reads go round-robin). A strict
// single-connection pass and a kClients pipelined pass hammer the router
// with warm `hdbscan` reads; every response must be byte-identical to
// the single-node protocol-core answer (`identical`, gated == 1 — the
// replicated path forwards worker replies verbatim, so no stripping is
// needed). `qps_multi` is gated monotone across replicas:1 -> replicas:2
// with 0.5 slack: a 1-core CI box cannot show real scaling (every hop is
// serialized), so the gate only rejects a collapse; the scaling claim
// applies on multi-core hardware (README "Multi-node serving").
//
// RouterShardedMerge/workers:2 — a sharded dataset split across two
// workers by the placement map; the router runs the distributed
// EMST / HDBSCAN* builds (per-shard MSTs + cross-shard BCCP edges under
// the same distance-decomposition Kruskal rule as src/dynamic/) and the
// answers are compared against a single-node engine over the union with
// built=/reused= tokens stripped (artifact cache keys legitimately
// differ across tiers; everything else must match byte-for-byte —
// `identical`, gated == 1). `dist_vs_single` (distributed cold-build
// wall over single-node cold-build wall) is informational: on one
// machine the distributed path adds fan-out round trips on top of the
// same compute, so it is expected to be > 1 there.
//
// CI runs a small-N smoke via bench_router_smoke, emitting
// BENCH_router_fanout.json for the bench-regression gate.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "cluster/router.h"
#include "net/protocol.h"
#include "net/server.h"

namespace parhc_bench {
namespace {

constexpr int kClients = 8;   ///< concurrent pipelined router connections
constexpr int kWindow = 32;   ///< pipelined requests in flight per conn
constexpr int kMinPts = 16;

/// Blocking loopback client with buffered line reads (same shape as
/// bench_server_throughput's; kept local — each bench binary stands
/// alone).
class Client {
 public:
  explicit Client(uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    PARHC_CHECK_MSG(
        ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) == 0,
        "bench client connect failed");
  }
  ~Client() { ::close(fd_); }

  void Send(const std::string& bytes) {
    size_t off = 0;
    while (off < bytes.size()) {
      ssize_t n = ::send(fd_, bytes.data() + off, bytes.size() - off, 0);
      PARHC_CHECK_MSG(n > 0, "bench client send failed");
      off += static_cast<size_t>(n);
    }
  }

  std::string ReadLine() {
    for (;;) {
      size_t nl = buf_.find('\n', pos_);
      if (nl != std::string::npos) {
        std::string line = buf_.substr(pos_, nl + 1 - pos_);
        pos_ = nl + 1;
        if (pos_ >= 64 * 1024 || pos_ == buf_.size()) {
          buf_.erase(0, pos_);
          pos_ = 0;
        }
        return line;
      }
      char tmp[65536];
      ssize_t n = ::read(fd_, tmp, sizeof tmp);
      PARHC_CHECK_MSG(n > 0, "bench client read failed/eof");
      buf_.append(tmp, static_cast<size_t>(n));
    }
  }

 private:
  int fd_ = -1;
  std::string buf_;
  size_t pos_ = 0;
};

/// Drops built=/reused= tokens: artifact-cache keys differ between the
/// router's merged pipeline and a single-node engine; every other byte
/// of the response must still match.
std::string StripArtifacts(const std::string& s) {
  std::string out, tok;
  auto flush = [&](char sep) {
    if (tok.rfind("built=", 0) != 0 && tok.rfind("reused=", 0) != 0 &&
        !tok.empty()) {
      if (!out.empty() && out.back() != '\n') out += ' ';
      out += tok;
    }
    if (sep == '\n') out += '\n';
    tok.clear();
  };
  for (char ch : s) {
    if (ch == ' ' || ch == '\n') {
      flush(ch);
    } else {
      tok += ch;
    }
  }
  if (!tok.empty()) flush('\0');
  return out;
}

/// One in-process parhc_netserver worker: engine + TCP front-end on an
/// ephemeral port, event loop on its own thread.
struct WorkerNode {
  ClusteringEngine engine;
  std::unique_ptr<net::NetServer> server;
  std::thread loop;

  WorkerNode() {
    net::NetServerOptions o;
    o.port = 0;
    o.workers = 2;
    o.max_queued = 1 << 16;
    o.max_pipelined = kWindow * 2;
    o.show_timing = false;  // responses compared byte-for-byte
    server = std::make_unique<net::NetServer>(engine, o);
    std::string err = server->Start();
    PARHC_CHECK_MSG(err.empty(), err.c_str());
    loop = std::thread([this] { server->Run(); });
  }
  ~WorkerNode() {
    server->Shutdown();
    loop.join();
  }
  std::string addr() const {
    return "127.0.0.1:" + std::to_string(server->port());
  }
};

/// One pipelined multi-client pass against the router front-end; every
/// reply compared against `expected`. Returns wall seconds.
double MultiClientPassSecs(uint16_t port, const std::string& query,
                          const std::string& expected, int per_client,
                          std::atomic<uint64_t>& mismatches) {
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  Timer t;
  for (int ci = 0; ci < kClients; ++ci) {
    threads.emplace_back([&] {
      Client c(port);
      int total = per_client;
      int prefill = std::min(kWindow, total);
      std::string burst;
      for (int w = 0; w < prefill; ++w) burst += query;
      c.Send(burst);
      int sent = prefill;
      for (int received = 0; received < total; ++received) {
        if (c.ReadLine() != expected) ++mismatches;
        int outstanding = sent - (received + 1);
        if (sent < total && outstanding <= kWindow / 2) {
          int batch = std::min(kWindow - outstanding, total - sent);
          c.Send(burst.substr(0, batch * query.size()));
          sent += batch;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  return t.Seconds();
}

void RunRouterFanout(benchmark::State& st, size_t n, int replicas) {
  SetNumWorkers(EnvMaxThreads());
  const std::string gen_line =
      "gen warm 2 varden " + std::to_string(n) + " 42\n";
  const std::string query = "hdbscan warm " + std::to_string(kMinPts) + "\n";
  const int single_queries = n >= 100000 ? 2000 : 400;
  const int multi_queries_per_client = n >= 100000 ? 1000 : 250;

  std::vector<std::unique_ptr<WorkerNode>> nodes;
  std::vector<std::string> addrs;
  for (int i = 0; i < replicas; ++i) {
    nodes.push_back(std::make_unique<WorkerNode>());
    addrs.push_back(nodes.back()->addr());
  }
  cluster::RouterOptions ropts;
  ropts.start_health_thread = false;  // all-healthy, deterministic rates
  cluster::Router router(addrs, ropts);
  std::string err = router.Start();
  PARHC_CHECK_MSG(err.empty(), err.c_str());
  cluster::RouterSessionFactory factory(router);
  net::NetServerOptions fopts;
  fopts.port = 0;
  fopts.workers = std::max(4, 2 * replicas);
  fopts.max_queued = 1 << 16;
  fopts.max_pipelined = kWindow * 2;
  fopts.show_timing = false;
  net::NetServer front(factory, fopts);
  err = front.Start();
  PARHC_CHECK_MSG(err.empty(), err.c_str());
  std::thread loop([&front] { front.Run(); });

  // Single-node reference: the warm REPL answer every routed response
  // must reproduce byte-for-byte.
  ClusteringEngine ref;
  net::ProtocolOptions popts;
  popts.show_timing = false;
  net::ProtocolSession repl(ref, popts);
  std::string gen_reply =
      repl.HandleLine(gen_line.substr(0, gen_line.size() - 1)).out;
  PARHC_CHECK_MSG(gen_reply.rfind("ok gen", 0) == 0, gen_reply.c_str());
  repl.HandleLine("hdbscan warm " + std::to_string(kMinPts));  // build
  const std::string expected =
      repl.HandleLine("hdbscan warm " + std::to_string(kMinPts)).out;
  PARHC_CHECK_MSG(expected.rfind("ok hdbscan", 0) == 0, expected.c_str());

  {
    // gen broadcasts to every worker; then one warm read per worker
    // (reads round-robin) builds each replica's artifacts, and a second
    // round checks the warm replies match the reference exactly.
    Client c(front.port());
    c.Send(gen_line);
    std::string routed_gen = c.ReadLine();
    PARHC_CHECK_MSG(routed_gen.rfind("ok gen", 0) == 0, routed_gen.c_str());
    for (int i = 0; i < replicas; ++i) {
      c.Send(query);
      c.ReadLine();  // cold: builds this replica's artifacts
    }
    for (int i = 0; i < replicas; ++i) {
      c.Send(query);
      PARHC_CHECK_MSG(c.ReadLine() == expected,
                      "warm routed reply differs from single-node");
    }
  }

  for (auto _ : st) {
    // ---- single: strict request/response over one connection ----
    std::atomic<uint64_t> mismatches{0};
    Timer t;
    {
      Client c(front.port());
      for (int i = 0; i < single_queries; ++i) {
        c.Send(query);
        if (c.ReadLine() != expected) ++mismatches;
      }
    }
    double single_secs = t.Seconds();

    // ---- multi: kClients pipelined connections (best of two) ----
    double multi_secs = 0;
    for (int rep = 0; rep < 2; ++rep) {
      double secs = MultiClientPassSecs(front.port(), query, expected,
                                        multi_queries_per_client, mismatches);
      if (rep == 0 || secs < multi_secs) multi_secs = secs;
    }

    double qps_single = single_queries / single_secs;
    double qps_multi =
        static_cast<double>(kClients) * multi_queries_per_client / multi_secs;
    st.counters["qps_single"] = qps_single;
    st.counters["qps_multi"] = qps_multi;
    st.counters["speedup"] = qps_multi / qps_single;
    st.counters["identical"] = mismatches.load() == 0 ? 1 : 0;
  }
  st.counters["n"] = static_cast<double>(n);
  st.counters["replicas"] = replicas;
  st.counters["clients"] = kClients;
  st.counters["cores"] =
      static_cast<double>(std::thread::hardware_concurrency());

  front.Shutdown();
  loop.join();
  router.Stop();
}

void RunRouterShardedMerge(benchmark::State& st, size_t n) {
  SetNumWorkers(EnvMaxThreads());
  const std::string seed = "geninsert s 2 varden " + std::to_string(n) + " 7";
  const std::string build = "hdbscan s " + std::to_string(kMinPts);

  std::vector<std::unique_ptr<WorkerNode>> nodes;
  std::vector<std::string> addrs;
  for (int i = 0; i < 2; ++i) {
    nodes.push_back(std::make_unique<WorkerNode>());
    addrs.push_back(nodes.back()->addr());
  }
  cluster::RouterOptions ropts;
  ropts.start_health_thread = false;
  cluster::Router router(addrs, ropts);
  std::string err = router.Start();
  PARHC_CHECK_MSG(err.empty(), err.c_str());
  net::ProtocolOptions popts;
  popts.show_timing = false;
  auto ask = [&](const std::string& line) {
    net::WireMessage msg;
    msg.text = line;
    return router.Handle(msg, popts).out;
  };

  // Single-node reference over the identical point set.
  ClusteringEngine ref;
  net::ProtocolSession repl(ref, popts);

  for (auto _ : st) {
    // Fresh dataset every iteration so both builds stay cold.
    ask("drop s");
    repl.HandleLine("drop s");
    std::string r = ask("dyn s 2");
    PARHC_CHECK_MSG(r.rfind("ok dyn", 0) == 0, r.c_str());
    r = ask(seed);
    PARHC_CHECK_MSG(r.rfind("ok geninsert", 0) == 0, r.c_str());
    r = repl.HandleLine("dyn s 2").out;
    PARHC_CHECK_MSG(r.rfind("ok dyn", 0) == 0, r.c_str());
    r = repl.HandleLine(seed).out;
    PARHC_CHECK_MSG(r.rfind("ok geninsert", 0) == 0, r.c_str());

    Timer t;
    std::string dist_hdbscan = ask(build);
    std::string dist_emst = ask("emst s");
    double dist_secs = t.Seconds();
    t.Reset();
    std::string single_hdbscan = repl.HandleLine(build).out;
    std::string single_emst = repl.HandleLine("emst s").out;
    double single_secs = t.Seconds();

    PARHC_CHECK_MSG(dist_hdbscan.rfind("ok hdbscan", 0) == 0,
                    dist_hdbscan.c_str());
    PARHC_CHECK_MSG(dist_emst.rfind("ok emst", 0) == 0, dist_emst.c_str());
    bool identical =
        StripArtifacts(dist_hdbscan) == StripArtifacts(single_hdbscan) &&
        StripArtifacts(dist_emst) == StripArtifacts(single_emst);
    st.counters["identical"] = identical ? 1 : 0;
    st.counters["dist_build_secs"] = dist_secs;
    st.counters["single_build_secs"] = single_secs;
    st.counters["dist_vs_single"] = dist_secs / single_secs;
  }
  st.counters["n"] = static_cast<double>(n);
  st.counters["workers"] = 2;
  st.counters["cores"] =
      static_cast<double>(std::thread::hardware_concurrency());
  router.Stop();
}

void RegisterAll() {
  size_t n = EnvN(20000);
  for (int replicas : {1, 2}) {
    std::string name =
        "RouterFanout/2D-SS-varden/replicas:" + std::to_string(replicas);
    benchmark::RegisterBenchmark(
        name.c_str(),
        [=](benchmark::State& st) { RunRouterFanout(st, n, replicas); })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(EnvIters())
        ->UseRealTime();
  }
  benchmark::RegisterBenchmark(
      "RouterShardedMerge/2D-SS-varden/workers:2",
      [=](benchmark::State& st) { RunRouterShardedMerge(st, n); })
      ->Unit(benchmark::kMillisecond)
      ->Iterations(EnvIters())
      ->UseRealTime();
}

}  // namespace
}  // namespace parhc_bench

int main(int argc, char** argv) {
  parhc_bench::RegisterAll();
  benchmark::Initialize(&argc, argv);
  parhc_bench::AddMachineContext();
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
