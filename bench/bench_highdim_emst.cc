// High-dimensional embedding workloads (d = 64 / 256): the runtime-
// dispatched SIMD distance kernels and the partitioned (1+eps) EMST path
// (emst/emst_highdim.h).
//
// Rows and acceptance counters (gated via bench/baselines/gate.json):
//   HighDimKernel/d:{64,256}   `simd_speedup` — dispatched vs pinned-scalar
//                              squared-distance kernel on the same block
//                              (the >= 3x floor at d=256 applies only on
//                              AVX2+FMA machines: the gate declares
//                              requires_cpu_features and is skipped on the
//                              scalar fallback);
//   HighDimEmst/{64,256}D-embed
//                              `identical`  — exact decomposition edge set
//                              == classic MemoGFK EMST (1.0 required);
//                              `eps_ratio`  — eps-path weight / exact
//                              weight, in [1, 1+eps];
//                              `cross_pruned` — cross pairs settled by the
//                              eps shortcut (> 0 shows the knob engages).
//
// CI runs the low-N smoke via the bench_highdim_smoke target, emitting
// BENCH_highdim_emst.json.
#include <cstdint>

#include "bench_common.h"

namespace parhc_bench {
namespace {

constexpr double kEps = 0.2;

template <int D>
const std::vector<Point<D>>& EmbedDataset(size_t n) {
  static std::map<size_t, std::vector<Point<D>>> cache;
  auto it = cache.find(n);
  if (it == cache.end()) {
    it = cache.emplace(n, GaussianEmbeddings<D>(n, 1)).first;
  }
  return it->second;
}

double TotalWeight(const std::vector<WeightedEdge>& edges) {
  double w = 0;
  for (const auto& e : edges) w += e.w;
  return w;
}

std::vector<WeightedEdge> Normalized(std::vector<WeightedEdge> edges) {
  for (auto& e : edges) {
    if (e.u > e.v) std::swap(e.u, e.v);
  }
  std::sort(edges.begin(), edges.end());
  return edges;
}

/// Dispatched vs pinned-scalar kernel on one query against a 4096-row
/// block — the microbenchmark behind the d=256 SIMD speedup gate.
template <int D>
void RunKernel(benchmark::State& st) {
  // ~256 KB block (L2-resident): an L3-sized block would leave both
  // kernels memory-bound and compress the measured speedup to the cache
  // bandwidth ratio instead of the ALU ratio the gate is about.
  constexpr size_t kRows = 32768 / D;
  constexpr int kReps = 400;
  std::vector<double> block(kRows * static_cast<size_t>(D));
  std::vector<double> q(D);
  for (size_t i = 0; i < block.size(); ++i) {
    block[i] = parhc::internal::U01(3, i, 0);
  }
  for (int d = 0; d < D; ++d) {
    q[d] = parhc::internal::U01(5, static_cast<uint64_t>(d), 1);
  }
  std::vector<double> out(kRows);
  // Interleaved min-of-trials: single-shot ratios on a shared machine
  // wander by 30%+, which would flap the >= 3x gate; the per-kernel
  // minimum is the stable noise-free estimate.
  constexpr int kTrials = 8;
  for (auto _ : st) {
    double scalar_secs = 1e30;
    double dispatch_secs = 1e30;
    for (int trial = 0; trial < kTrials; ++trial) {
      Timer t;
      for (int r = 0; r < kReps; ++r) {
        simd::BatchSquaredDistancesAt(simd::IsaLevel::kScalar, q.data(),
                                      block.data(), kRows, D, D, out.data());
        benchmark::DoNotOptimize(out.data());
      }
      scalar_secs = std::min(scalar_secs, t.Seconds());
      t.Reset();
      for (int r = 0; r < kReps; ++r) {
        simd::BatchSquaredDistancesN(q.data(), block.data(), kRows, D, D,
                                     out.data());
        benchmark::DoNotOptimize(out.data());
      }
      dispatch_secs = std::min(dispatch_secs, t.Seconds());
    }
    st.counters["scalar_secs"] = scalar_secs;
    st.counters["dispatch_secs"] = dispatch_secs;
    st.counters["simd_speedup"] = scalar_secs / dispatch_secs;
  }
  st.counters["dim"] = D;
  st.counters["cpu_features"] = CpuFeaturesCounter();
}

/// Exact decomposition vs classic MemoGFK, plus the (1+eps) path, on the
/// Gaussian-mixture embedding workload.
template <int D>
void RunHighDimEmst(benchmark::State& st, size_t n) {
  const auto& pts = EmbedDataset<D>(n);
  HighDimEmstOptions opts;
  opts.partitions = 4;  // exercise the decomposition even at smoke n
  for (auto _ : st) {
    Timer t;
    HighDimEmstInfo info;
    auto exact = HighDimEmst(pts, opts, &info);
    double exact_secs = t.Seconds();
    t.Reset();
    auto classic = EmstMemoGfk(pts);
    double classic_secs = t.Seconds();
    HighDimEmstOptions eopts = opts;
    eopts.eps = kEps;
    HighDimEmstInfo einfo;
    t.Reset();
    auto approx = HighDimEmst(pts, eopts, &einfo);
    double eps_secs = t.Seconds();
    double exact_w = TotalWeight(exact);
    st.counters["identical"] =
        Normalized(exact) == Normalized(classic) ? 1.0 : 0.0;
    st.counters["eps_ratio"] = TotalWeight(approx) / exact_w;
    st.counters["exact_secs"] = exact_secs;
    st.counters["classic_secs"] = classic_secs;
    st.counters["eps_secs"] = eps_secs;
    st.counters["partitions"] = info.partitions;
    st.counters["cross_pruned"] = static_cast<double>(einfo.cross_pruned);
  }
  st.counters["n"] = static_cast<double>(n);
  st.counters["eps"] = kEps;
  st.counters["cpu_features"] = CpuFeaturesCounter();
}

void RegisterAll() {
  size_t n = EnvN(6000);
  benchmark::RegisterBenchmark("HighDimKernel/d:64", RunKernel<64>)
      ->Unit(benchmark::kMicrosecond)
      ->Iterations(EnvIters());
  benchmark::RegisterBenchmark("HighDimKernel/d:256", RunKernel<256>)
      ->Unit(benchmark::kMicrosecond)
      ->Iterations(EnvIters());
  benchmark::RegisterBenchmark(
      "HighDimEmst/64D-embed",
      [=](benchmark::State& st) { RunHighDimEmst<64>(st, n); })
      ->Unit(benchmark::kMillisecond)
      ->Iterations(EnvIters());
  benchmark::RegisterBenchmark(
      "HighDimEmst/256D-embed",
      [=](benchmark::State& st) {
        RunHighDimEmst<256>(st, std::max<size_t>(n / 4, 64));
      })
      ->Unit(benchmark::kMillisecond)
      ->Iterations(EnvIters());
}

}  // namespace
}  // namespace parhc_bench

int main(int argc, char** argv) {
  parhc_bench::RegisterAll();
  benchmark::Initialize(&argc, argv);
  parhc_bench::AddMachineContext();
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
